#include "trace/mtrace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define TDC_MTRACE_HAVE_MMAP 1
#endif

#include "ckpt/checkpoint.hh"
#include "ckpt/serializer.hh"
#include "common/format.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace tdc {
namespace mtrace {

namespace {

constexpr std::uint8_t flagTypeMask = 0x03;
constexpr std::uint8_t flagDependent = 0x04;
constexpr std::uint8_t flagNegDelta = 0x08;
constexpr std::uint8_t flagReserved = 0xF0;

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::string
coreSectionName(unsigned core)
{
    return format("core{}", core);
}

} // namespace

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

MtraceWriter::MtraceWriter(std::string path, unsigned cores,
                           bool shared_page_table, std::string source,
                           std::uint64_t block_records)
    : path_(std::move(path)), sharedPt_(shared_page_table),
      source_(std::move(source)),
      blockRecords_(block_records > 0 ? block_records : 1),
      streams_(cores)
{
    tdc_assert(cores >= 1, "mtrace writer needs at least one core");
}

MtraceWriter::~MtraceWriter()
{
    if (!closed_) {
        try {
            close();
        } catch (...) {
            // A FatalError (e.g. an empty stream) must not escape a
            // destructor; the explicit close() path reports it.
        }
    }
}

void
MtraceWriter::append(unsigned core, const TraceRecord &rec)
{
    tdc_assert(!closed_, "append after close");
    tdc_assert(core < streams_.size(),
               "mtrace writer: core {} out of range ({} streams)", core,
               streams_.size());
    Stream &s = streams_[core];

    if (s.count % blockRecords_ == 0) {
        // Block boundary: record the reference and restart the delta
        // base, so this block decodes without its predecessors.
        s.blocks.push_back({s.bytes.size(), s.count});
        s.prev = 0;
    }

    std::uint8_t flags = static_cast<std::uint8_t>(rec.type);
    if (rec.dependent)
        flags |= flagDependent;
    std::uint64_t delta;
    if (rec.vaddr >= s.prev) {
        delta = rec.vaddr - s.prev;
    } else {
        delta = s.prev - rec.vaddr;
        flags |= flagNegDelta;
    }
    s.bytes.push_back(flags);
    putVarint(s.bytes, rec.nonMemInsts);
    putVarint(s.bytes, delta);
    s.prev = rec.vaddr;
    ++s.count;
}

std::uint64_t
MtraceWriter::recordsWritten(unsigned core) const
{
    return streams_.at(core).count;
}

std::uint64_t
MtraceWriter::totalRecords() const
{
    std::uint64_t n = 0;
    for (const Stream &s : streams_)
        n += s.count;
    return n;
}

void
MtraceWriter::close()
{
    if (closed_)
        return;
    for (std::size_t c = 0; c < streams_.size(); ++c) {
        if (streams_[c].count == 0)
            fatal("mtrace '{}': core {} has no records (replay sources "
                  "never run dry, so every stream must be non-empty)",
                  path_, c);
    }

    auto meta = json::Value::object();
    meta.set("schema", mtraceSchema);
    meta.set("cores", static_cast<std::uint64_t>(streams_.size()));
    meta.set("shared_page_table", sharedPt_);
    meta.set("block_records", blockRecords_);
    auto counts = json::Value::array();
    for (const Stream &s : streams_)
        counts.push(s.count);
    meta.set("records", std::move(counts));
    meta.set("source", source_);

    struct Sec
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };
    std::vector<Sec> secs;
    {
        ckpt::Serializer s;
        s.putString(meta.dump());
        secs.push_back({"meta", s.take()});
    }
    for (std::size_t c = 0; c < streams_.size(); ++c)
        secs.push_back({coreSectionName(static_cast<unsigned>(c)),
                        std::move(streams_[c].bytes)});
    {
        ckpt::Serializer s;
        s.putU32(static_cast<std::uint32_t>(streams_.size()));
        for (const Stream &st : streams_) {
            s.putU64(st.count);
            s.putU64(st.blocks.size());
            for (const BlockRef &b : st.blocks) {
                s.putU64(b.byteOffset);
                s.putU64(b.firstRecord);
            }
        }
        secs.push_back({"index", s.take()});
    }

    const std::string tmp = path_ + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot open '{}' for writing", tmp);
    {
        ckpt::Serializer head;
        for (char ch : mtraceMagic)
            head.putU8(static_cast<std::uint8_t>(ch));
        head.putU32(mtraceFormatVersion);
        head.putU32(static_cast<std::uint32_t>(secs.size()));
        out.write(reinterpret_cast<const char *>(head.bytes().data()),
                  static_cast<std::streamsize>(head.size()));
    }
    for (const Sec &sec : secs) {
        ckpt::Serializer sh;
        sh.putString(sec.name);
        sh.putU64(sec.payload.size());
        sh.putU64(ckpt::fnv1a(sec.payload.data(), sec.payload.size()));
        out.write(reinterpret_cast<const char *>(sh.bytes().data()),
                  static_cast<std::streamsize>(sh.size()));
        out.write(reinterpret_cast<const char *>(sec.payload.data()),
                  static_cast<std::streamsize>(sec.payload.size()));
    }
    out.flush();
    if (!out)
        fatal("error writing mtrace file '{}'", tmp);
    out.close();
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        fatal("cannot publish mtrace file '{}'", path_);
    closed_ = true;
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

namespace {

/** Bounds-checked parse cursor over the mapped file, reporting the
 *  absolute offset of whatever is malformed or missing. */
struct FileView
{
    const std::string &path;
    const std::uint8_t *data;
    std::uint64_t size;
    std::uint64_t pos = 0;

    void
    need(std::uint64_t n, const char *what) const
    {
        if (n > size - pos)
            fatal("mtrace '{}': truncated {} at offset {} (need {} "
                  "bytes, {} available)",
                  path, what, pos, n, size - pos);
    }

    std::uint32_t
    getU32(const char *what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    getU64(const char *what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    std::string
    getString(const char *what)
    {
        const std::uint64_t len = getU64(what);
        need(len, what);
        std::string s(reinterpret_cast<const char *>(data + pos),
                      static_cast<std::size_t>(len));
        pos += len;
        return s;
    }
};

} // namespace

MtraceReader::MtraceReader(const std::string &path) : path_(path)
{
    mapFile();
    parse();
}

MtraceReader::~MtraceReader()
{
#ifdef TDC_MTRACE_HAVE_MMAP
    if (mapped_)
        ::munmap(const_cast<std::uint8_t *>(data_),
                 static_cast<std::size_t>(size_));
#endif
}

void
MtraceReader::mapFile()
{
#ifdef TDC_MTRACE_HAVE_MMAP
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd < 0)
        fatal("cannot open mtrace file '{}'", path_);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fatal("cannot stat mtrace file '{}'", path_);
    }
    size_ = static_cast<std::uint64_t>(st.st_size);
    if (size_ == 0) {
        ::close(fd);
        fatal("mtrace '{}': file is empty", path_);
    }
    void *m = ::mmap(nullptr, static_cast<std::size_t>(size_),
                     PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (m != MAP_FAILED) {
        data_ = static_cast<const std::uint8_t *>(m);
        mapped_ = true;
        return;
    }
#endif
    // Fallback: read the whole file into memory.
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        fatal("cannot open mtrace file '{}'", path_);
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    if (end <= 0)
        fatal("mtrace '{}': file is empty", path_);
    fallback_.resize(static_cast<std::size_t>(end));
    in.seekg(0, std::ios::beg);
    in.read(reinterpret_cast<char *>(fallback_.data()),
            static_cast<std::streamsize>(fallback_.size()));
    if (!in)
        fatal("error reading mtrace file '{}'", path_);
    data_ = fallback_.data();
    size_ = fallback_.size();
}

void
MtraceReader::parse()
{
    FileView v{path_, data_, size_};

    v.need(sizeof(mtraceMagic), "magic");
    if (std::memcmp(data_, mtraceMagic, sizeof(mtraceMagic)) != 0)
        fatal("'{}' is not a tdc-mtrace file (bad magic)", path_);
    v.pos = sizeof(mtraceMagic);
    const std::uint32_t version = v.getU32("format version");
    if (version != mtraceFormatVersion)
        fatal("mtrace '{}': unsupported format version {} (this build "
              "reads v{})",
              path_, version, mtraceFormatVersion);
    const std::uint32_t nsec = v.getU32("section count");
    if (nsec < 3 || nsec > 3 + 1024)
        fatal("mtrace '{}': implausible section count {} at offset {}",
              path_, nsec, v.pos - 4);

    struct RawSec
    {
        std::string name;
        std::uint64_t offset; //!< payload file offset
        std::uint64_t size;
    };
    std::vector<RawSec> raw;
    for (std::uint32_t i = 0; i < nsec; ++i) {
        const std::string name = v.getString("section name");
        const std::uint64_t sz = v.getU64("section size");
        const std::uint64_t sum = v.getU64("section checksum");
        v.need(sz, "section payload");
        const std::uint64_t got = ckpt::fnv1a(data_ + v.pos, sz);
        if (got != sum)
            fatal("mtrace '{}': checksum mismatch in section '{}' at "
                  "offset {} (stored {:016x}, computed {:016x})",
                  path_, name, v.pos, sum, got);
        raw.push_back({name, v.pos, sz});
        sections_.push_back({name, sz, sum});
        v.pos += sz;
    }
    if (v.pos != size_)
        fatal("mtrace '{}': {} trailing bytes after the last section "
              "(offset {})",
              path_, size_ - v.pos, v.pos);

    auto findSec = [&](const std::string &name) -> const RawSec & {
        for (const RawSec &s : raw)
            if (s.name == name)
                return s;
        fatal("mtrace '{}': missing required section '{}'", path_,
              name);
    };

    // "meta": a length-prefixed JSON string.
    {
        const RawSec &ms = findSec("meta");
        FileView mv{path_, data_, ms.offset + ms.size, ms.offset};
        const std::string text = mv.getString("meta JSON");
        if (mv.pos != ms.offset + ms.size)
            fatal("mtrace '{}': trailing bytes in 'meta' at offset {}",
                  path_, mv.pos);
        std::string err;
        auto doc = json::Value::parse(text, &err);
        if (!doc || !doc->isObject())
            fatal("mtrace '{}': 'meta' is not a JSON object: {}", path_,
                  err.empty() ? "wrong type" : err);
        const json::Value *schema = doc->find("schema");
        if (schema == nullptr || !schema->isString()
            || schema->asString() != mtraceSchema)
            fatal("mtrace '{}': meta schema tag is not '{}'", path_,
                  mtraceSchema);
        const json::Value *cores = doc->find("cores");
        const json::Value *shared = doc->find("shared_page_table");
        const json::Value *block = doc->find("block_records");
        const json::Value *recs = doc->find("records");
        if (cores == nullptr || !cores->isUint() || shared == nullptr
            || !shared->isBool() || block == nullptr || !block->isUint()
            || recs == nullptr || !recs->isArray())
            fatal("mtrace '{}': meta is missing cores / "
                  "shared_page_table / block_records / records",
                  path_);
        if (cores->asUint() < 1 || cores->asUint() > 1024)
            fatal("mtrace '{}': implausible core count {}", path_,
                  cores->asUint());
        meta_.cores = static_cast<unsigned>(cores->asUint());
        meta_.sharedPageTable = shared->asBool();
        meta_.blockRecords = block->asUint();
        if (meta_.blockRecords == 0)
            fatal("mtrace '{}': block_records must be >= 1", path_);
        if (recs->items().size() != meta_.cores)
            fatal("mtrace '{}': meta lists {} record counts for {} "
                  "cores",
                  path_, recs->items().size(), meta_.cores);
        for (const json::Value &r : recs->items()) {
            if (!r.isUint() || r.asUint() == 0)
                fatal("mtrace '{}': meta record counts must be "
                      "positive integers",
                      path_);
            meta_.records.push_back(r.asUint());
        }
        if (const json::Value *src = doc->find("source");
            src != nullptr && src->isString())
            meta_.source = src->asString();
    }

    // Core sections, in order.
    for (unsigned c = 0; c < meta_.cores; ++c) {
        const RawSec &cs = findSec(coreSectionName(c));
        cores_.push_back(
            {data_ + cs.offset, cs.size, cs.offset, meta_.records[c],
             {}});
    }

    // "index": per-core block tables, validated against the streams.
    {
        const RawSec &is = findSec("index");
        FileView iv{path_, data_, is.offset + is.size, is.offset};
        const std::uint32_t n = iv.getU32("index core count");
        if (n != meta_.cores)
            fatal("mtrace '{}': index lists {} cores, meta lists {}",
                  path_, n, meta_.cores);
        for (unsigned c = 0; c < meta_.cores; ++c) {
            CoreStream &st = cores_[c];
            const std::uint64_t count = iv.getU64("index record count");
            if (count != st.count)
                fatal("mtrace '{}': index says core {} has {} records, "
                      "meta says {}",
                      path_, c, count, st.count);
            const std::uint64_t nblocks = iv.getU64("index block count");
            const std::uint64_t expect =
                (count + meta_.blockRecords - 1) / meta_.blockRecords;
            if (nblocks != expect)
                fatal("mtrace '{}': core {} has {} index blocks, {} "
                      "records at {} per block need {}",
                      path_, c, nblocks, count, meta_.blockRecords,
                      expect);
            st.blocks.reserve(static_cast<std::size_t>(nblocks));
            for (std::uint64_t b = 0; b < nblocks; ++b) {
                BlockRef ref;
                ref.byteOffset = iv.getU64("index block offset");
                ref.firstRecord = iv.getU64("index first record");
                if (ref.firstRecord != b * meta_.blockRecords)
                    fatal("mtrace '{}': core {} block {} starts at "
                          "record {}, expected {}",
                          path_, c, b, ref.firstRecord,
                          b * meta_.blockRecords);
                if (ref.byteOffset >= st.size
                    || (b > 0
                        && ref.byteOffset
                               <= st.blocks.back().byteOffset))
                    fatal("mtrace '{}': core {} block {} has byte "
                          "offset {} out of range or non-increasing "
                          "(section is {} bytes)",
                          path_, c, b, ref.byteOffset, st.size);
                st.blocks.push_back(ref);
            }
            if (!st.blocks.empty() && st.blocks[0].byteOffset != 0)
                fatal("mtrace '{}': core {} block 0 does not start at "
                      "byte 0",
                      path_, c);
        }
        if (iv.pos != is.offset + is.size)
            fatal("mtrace '{}': trailing bytes in 'index' at offset {}",
                  path_, iv.pos);
    }
}

std::uint64_t
MtraceReader::records(unsigned core) const
{
    tdc_assert(core < meta_.cores, "core {} out of range", core);
    return meta_.records[core];
}

std::uint64_t
MtraceReader::totalRecords() const
{
    std::uint64_t n = 0;
    for (std::uint64_t c : meta_.records)
        n += c;
    return n;
}

void
MtraceReader::verifyAll() const
{
    for (unsigned c = 0; c < meta_.cores; ++c) {
        MtraceCursor cur(*this, c);
        const std::uint64_t count = meta_.records[c];
        for (std::uint64_t i = 0; i < count; ++i)
            (void)cur.next();
        // One more next() must wrap to record 0 without fault; it also
        // proves the final record ended exactly at the payload end
        // (decodeOne checks stream bounds on every byte).
        (void)cur.next();
    }
}

// ---------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------

MtraceCursor::MtraceCursor(const MtraceReader &reader, unsigned core)
    : reader_(&reader), core_(core)
{
    tdc_assert(core < reader.coreCount(),
               "mtrace '{}': cursor core {} out of range ({} cores)",
               reader.path(), core, reader.coreCount());
    cs_ = &reader.cores_[core];
    loadBlock(0);
}

void
MtraceCursor::corrupt(std::uint64_t at, const std::string &what) const
{
    fatal("mtrace '{}': core {}: {} at offset {}", reader_->path(),
          core_, what, cs_->fileOffset + at);
}

void
MtraceCursor::loadBlock(std::uint64_t block)
{
    const auto &blocks = cs_->blocks;
    tdc_assert(block < blocks.size(), "block {} out of range", block);
    blockIdx_ = block;
    pos_ = blocks[block].byteOffset;
    idx_ = blocks[block].firstRecord;
    blockEnd_ = block + 1 < blocks.size() ? blocks[block + 1].firstRecord
                                          : cs_->count;
    prev_ = 0;
}

TraceRecord
MtraceCursor::decodeOne()
{
    const std::uint64_t at = pos_;
    const std::uint8_t *d = cs_->data;
    const std::uint64_t size = cs_->size;

    auto byte = [&]() -> std::uint8_t {
        if (pos_ >= size)
            corrupt(pos_, "truncated record stream");
        return d[pos_++];
    };
    auto varint = [&](const char *what) -> std::uint64_t {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            const std::uint8_t b = byte();
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0) {
                if (shift == 63 && (b & 0x7E) != 0)
                    corrupt(at, format("{} varint overflows 64 bits",
                                       what));
                return v;
            }
        }
        corrupt(at, format("malformed {} varint (no terminator within "
                           "10 bytes)",
                           what));
    };

    const std::uint8_t flags = byte();
    if ((flags & flagReserved) != 0)
        corrupt(at, format("reserved flag bits set ({:#04x})", flags));
    const std::uint8_t type = flags & flagTypeMask;
    if (type > static_cast<std::uint8_t>(AccessType::Store))
        corrupt(at, format("invalid access type {}", type));

    const std::uint64_t nmi = varint("nonMemInsts");
    if (nmi > 0xFFFF'FFFFULL)
        corrupt(at, format("nonMemInsts {} exceeds 32 bits", nmi));
    const std::uint64_t delta = varint("address delta");

    TraceRecord rec;
    rec.nonMemInsts = static_cast<std::uint32_t>(nmi);
    rec.type = static_cast<AccessType>(type);
    rec.dependent = (flags & flagDependent) != 0;
    rec.vaddr = (flags & flagNegDelta) != 0 ? prev_ - delta
                                            : prev_ + delta;
    prev_ = rec.vaddr;
    return rec;
}

TraceRecord
MtraceCursor::next()
{
    if (idx_ == cs_->count) {
        // Wrap: replay loops forever over the stream.
        loadBlock(0);
    } else if (idx_ == blockEnd_) {
        const std::uint64_t expect =
            cs_->blocks[blockIdx_ + 1].byteOffset;
        if (pos_ != expect)
            corrupt(pos_, format("block {} ended at byte {} but the "
                                 "index places it at byte {}",
                                 blockIdx_, pos_, expect));
        loadBlock(blockIdx_ + 1);
    }
    const TraceRecord rec = decodeOne();
    ++idx_;
    ++position_;
    return rec;
}

void
MtraceCursor::seek(std::uint64_t position)
{
    const std::uint64_t target = position % cs_->count;

    // Find the block containing `target`: last block whose firstRecord
    // is <= target. Block first-records are uniform multiples of
    // blockRecords (validated at open), so this is a direct divide.
    const std::uint64_t block =
        target / reader_->meta().blockRecords;
    loadBlock(block);
    while (idx_ < target) {
        (void)decodeOne();
        ++idx_;
    }
    position_ = position;
}

// ---------------------------------------------------------------------
// Content hash
// ---------------------------------------------------------------------

std::uint64_t
traceContentHash(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open trace file '{}' for hashing", path);
    // Incremental FNV-1a with the same constants as ckpt::fnv1a, so
    // hashing in chunks equals hashing the whole file at once.
    std::uint64_t h = 14695981039346656037ULL;
    std::vector<char> buf(1 << 20);
    while (in.read(buf.data(),
                   static_cast<std::streamsize>(buf.size()))
           || in.gcount() > 0) {
        const std::streamsize got = in.gcount();
        for (std::streamsize i = 0; i < got; ++i) {
            h ^= static_cast<unsigned char>(buf[i]);
            h *= 1099511628211ULL;
        }
        if (got < static_cast<std::streamsize>(buf.size()))
            break;
    }
    return h;
}

} // namespace mtrace
} // namespace tdc
