/**
 * @file
 * Synthetic memory-reference generator.
 *
 * A stream is a weighted mixture of four access classes:
 *
 *  - hot:       Zipf-distributed references over a small hot page set
 *               (captures L1/L2-filtered temporal locality);
 *  - stream:    sequential sweeps over the main footprint with a
 *               configurable spatial run length per page; sweeps wrap,
 *               so small footprints are re-visited (libquantum-style
 *               reuse) while large ones behave like one-shot scans
 *               (GemsFDTD/milc-style low reuse);
 *  - chase:     uniform random references over the footprint
 *               (pointer-chasing, mcf/omnetpp-style);
 *  - singleton: pages touched exactly once in one or two blocks
 *               (the server-workload singletons of Section 5.4).
 *
 * The virtual address map of one stream:
 *
 *   [ hot pages | streamed/chased footprint | endless singleton region ]
 *
 * Multi-threaded workloads give each thread the same shared segment
 * plus a thread-private segment at a disjoint offset (one process, one
 * page table -- shared pages stay cacheable, Section 3.5).
 */

#ifndef TDC_TRACE_SYNTHETIC_HH
#define TDC_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <optional>

#include "ckpt/checkpointable.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace tdc {

/** Tuning knobs of one synthetic stream. */
struct SyntheticParams
{
    /** Pages in the streamed/chased footprint (dominant region). */
    std::uint64_t footprintPages = 16384;

    /** Pages in the hot set. */
    std::uint64_t hotPages = 128;

    // Mixture weights (normalized internally).
    double hotWeight = 0.50;
    double streamWeight = 0.40;
    double chaseWeight = 0.10;
    double singletonWeight = 0.0;

    /** Consecutive 64B blocks touched per page while streaming. */
    unsigned seqRunLines = 16;

    /**
     * Blocks touched in each low-reuse ("singleton") page before it is
     * abandoned; the paper's threshold for non-cacheable classification
     * is 32 accesses, so anything well below that qualifies.
     */
    unsigned singletonRunLines = 1;

    /** Fraction of instructions that are memory references. */
    double memRefFraction = 0.30;

    /** Fraction of references that are stores. */
    double writeFraction = 0.25;

    /** Zipf skew of the hot set. */
    double zipfSkew = 0.9;

    /**
     * Probability that a load is serializing (value feeds address or
     * control). Chase references are always dependent on top of this.
     */
    double depFraction = 0.25;

    /** Base virtual address of the stream. */
    Addr baseVaddr = 0x1000'0000;

    /**
     * Extra page offset of the singleton region past the footprint;
     * gives each thread of a multithreaded workload a private,
     * non-overlapping singleton space.
     */
    std::uint64_t singletonRegionOffsetPages = 0;

    /** RNG seed (deterministic per workload/thread). */
    std::uint64_t seed = 1;
};

class SyntheticTraceGen : public WorkloadSource
{
  public:
    explicit SyntheticTraceGen(const SyntheticParams &params);

    TraceRecord next() override;
    void reset() override;

    const SyntheticParams &params() const { return params_; }

    /** First VPN of the streamed/chased footprint. */
    PageNum footprintFirstVpn() const;
    /** One past the last VPN of the streamed/chased footprint. */
    PageNum footprintEndVpn() const;
    /** First VPN of the (endless) singleton region. */
    PageNum singletonFirstVpn() const;

    /**
     * True if the page will see fewer than `threshold` block accesses
     * over the stream's lifetime -- the oracle behind the
     * non-cacheable-page case study (Section 5.4). Singleton pages
     * always qualify; chase-only footprints qualify when the expected
     * per-page touch count is below the threshold.
     */
    bool isLowReusePage(PageNum vpn, unsigned threshold = 32) const;

    /** RNG engine state plus the stream/singleton cursors; the Zipf
     *  table is immutable and rebuilt from params. */
    void saveState(ckpt::Serializer &out) const override;
    void loadState(ckpt::Deserializer &in) override;

  private:
    enum class Cls { Hot, Stream, Chase, Singleton };

    Cls pickClass();
    Addr hotRef();
    Addr streamRef();
    Addr chaseRef();
    Addr singletonRef();

    SyntheticParams params_;
    Pcg32 rng_;
    std::unique_ptr<ZipfSampler> zipf_;

    // Normalized cumulative weights.
    double cHot_, cStream_, cChase_;

    // Streaming cursor.
    std::uint64_t streamPage_ = 0; //!< index within footprint
    unsigned streamLine_ = 0;      //!< line within current run
    unsigned runStartLine_ = 0;

    // Singleton cursor.
    std::uint64_t singletonPage_ = 0;
    unsigned singletonLine_ = 0;
    double avgGap_; //!< mean non-memory instructions per reference
};

} // namespace tdc

#endif // TDC_TRACE_SYNTHETIC_HH
