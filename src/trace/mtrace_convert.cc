/**
 * @file
 * Public-format converters into tdc-mtrace-v1: ChampSim instruction
 * traces and the legacy flat TDCTRACE format.
 */

#include <cstring>
#include <fstream>

#include "common/format.hh"
#include "common/logging.hh"
#include "trace/mtrace.hh"
#include "trace/trace_file.hh"

namespace tdc {
namespace mtrace {

namespace {

/**
 * The ChampSim input_instr layout: 64 bytes, naturally aligned, little
 * endian. NUM_INSTR_DESTINATIONS = 2, NUM_INSTR_SOURCES = 4.
 */
struct ChampSimInstr
{
    std::uint64_t ip;
    std::uint8_t isBranch;
    std::uint8_t branchTaken;
    std::uint8_t destRegs[2];
    std::uint8_t srcRegs[4];
    std::uint64_t destMem[2];
    std::uint64_t srcMem[4];
};
static_assert(sizeof(ChampSimInstr) == 64,
              "ChampSim record layout drifted");

} // namespace

ConvertStats
convertChampSim(const std::string &in, const std::string &out,
                std::uint64_t block_records)
{
    std::ifstream f(in, std::ios::binary);
    if (!f)
        fatal("cannot open ChampSim trace '{}'", in);

    MtraceWriter writer(out, /*cores=*/1, /*shared_page_table=*/false,
                        format("champsim:{}", in), block_records);
    ConvertStats st;
    std::uint32_t pending = 0; //!< non-memory instructions accumulated

    ChampSimInstr ci{};
    std::uint64_t offset = 0;
    while (true) {
        f.read(reinterpret_cast<char *>(&ci), sizeof(ci));
        const auto got = static_cast<std::uint64_t>(f.gcount());
        if (got == 0)
            break;
        if (got != sizeof(ci))
            fatal("ChampSim trace '{}': truncated record at offset {} "
                  "({} of {} bytes)",
                  in, offset, got, sizeof(ci));
        offset += sizeof(ci);
        ++st.instructions;

        bool first = true;
        auto emit = [&](Addr vaddr, AccessType type) {
            TraceRecord rec;
            rec.vaddr = vaddr;
            rec.type = type;
            rec.nonMemInsts = first ? pending : 0;
            // A branch that loads steers control with the loaded
            // value: the core cannot run ahead of it.
            rec.dependent =
                type == AccessType::Load && ci.isBranch != 0;
            writer.append(0, rec);
            ++st.records;
            if (type == AccessType::Load)
                ++st.loads;
            else
                ++st.stores;
            if (first) {
                pending = 0;
                first = false;
            }
        };
        for (std::uint64_t a : ci.srcMem)
            if (a != 0)
                emit(a, AccessType::Load);
        for (std::uint64_t a : ci.destMem)
            if (a != 0)
                emit(a, AccessType::Store);
        if (first) {
            // No memory operand: fold into the next record's gap.
            if (pending != 0xFFFF'FFFFu)
                ++pending;
        }
    }
    if (st.records == 0)
        fatal("ChampSim trace '{}' contains no memory references", in);
    writer.close();
    return st;
}

ConvertStats
convertLegacy(const std::string &in, const std::string &out,
              std::uint64_t block_records)
{
    // FileTraceSource validates the TDCTRACE header and record count;
    // records() bounds the pull so the looping source is read exactly
    // once.
    FileTraceSource src(in);
    MtraceWriter writer(out, /*cores=*/1, /*shared_page_table=*/false,
                        format("legacy:{}", in), block_records);
    ConvertStats st;
    for (std::size_t i = 0; i < src.records(); ++i) {
        const TraceRecord rec = src.next();
        writer.append(0, rec);
        ++st.records;
        st.instructions += rec.nonMemInsts + 1;
        if (rec.type == AccessType::Store)
            ++st.stores;
        else
            ++st.loads;
    }
    writer.close();
    return st;
}

} // namespace mtrace
} // namespace tdc
