/**
 * @file
 * Trace record format and the trace-source interface consumed by the
 * core model.
 *
 * The paper drives McSimA+ with 100M-instruction SimPoint slices of
 * SPEC CPU2006 / PARSEC. Those traces are proprietary, so this
 * reproduction substitutes parameterized synthetic sources
 * (trace/synthetic.hh) that match the first-order properties the
 * evaluation depends on: memory intensity, footprint, page-level reuse,
 * spatial run length and write fraction.
 */

#ifndef TDC_TRACE_TRACE_HH
#define TDC_TRACE_TRACE_HH

#include <cstdint>

#include "ckpt/checkpointable.hh"
#include "common/types.hh"

namespace tdc {

/** One memory reference plus the non-memory work preceding it. */
struct TraceRecord
{
    /** Non-memory instructions executed before this reference. */
    std::uint32_t nonMemInsts = 0;
    AccessType type = AccessType::Load;
    Addr vaddr = 0;

    /**
     * Dependent load: later work needs its value (pointer chase, loop-
     * carried dependence), so the core cannot run ahead of it. Limits
     * achievable memory-level parallelism exactly where real programs
     * lose it.
     */
    bool dependent = false;
};

/** An endless instruction stream; cores stop at their budget. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produces the next record. Sources never run dry. */
    virtual TraceRecord next() = 0;

    /** Restarts the stream deterministically. */
    virtual void reset() = 0;
};

/**
 * A trace source that can ride in a warm checkpoint: every workload a
 * System binds to a core -- synthetic generator, trace replay, or the
 * recording tee around either -- saves and restores its cursor state
 * with the rest of the machine.
 */
class WorkloadSource : public TraceSource, public ckpt::Checkpointable
{
};

} // namespace tdc

#endif // TDC_TRACE_TRACE_HH
