/**
 * @file
 * Record mode: tee any workload source into a tdc-mtrace-v1 writer.
 *
 * A RecordingSource wraps the real per-core source. next() forwards and
 * appends the record to the shared writer; checkpoint state is the
 * inner source's, byte for byte, so a recorded run's checkpoints --
 * and its run report, since nothing about the simulation changes --
 * are identical to the unrecorded run's.
 *
 * After the run the System pads each stream with a few thousand extra
 * records pulled from the inner source (without feeding them to any
 * core), so a replay whose budget slightly exceeds the recorded one
 * does not wrap back to the beginning of the stream.
 */

#ifndef TDC_TRACE_RECORD_HH
#define TDC_TRACE_RECORD_HH

#include <memory>

#include "trace/mtrace.hh"
#include "trace/trace.hh"

namespace tdc {
namespace mtrace {

class RecordingSource : public WorkloadSource
{
  public:
    RecordingSource(std::unique_ptr<WorkloadSource> inner,
                    MtraceWriter &writer, unsigned core)
        : inner_(std::move(inner)), writer_(&writer), core_(core)
    {
    }

    TraceRecord
    next() override
    {
        const TraceRecord rec = inner_->next();
        writer_->append(core_, rec);
        return rec;
    }

    void reset() override { inner_->reset(); }

    // Checkpoint bytes are the inner source's: a checkpoint taken
    // while recording restores into an unrecorded run and vice versa.
    void
    saveState(ckpt::Serializer &out) const override
    {
        inner_->saveState(out);
    }
    void
    loadState(ckpt::Deserializer &in) override
    {
        inner_->loadState(in);
    }

    /** Appends `n` more records to the file without consuming them. */
    void
    pad(std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            writer_->append(core_, inner_->next());
    }

    WorkloadSource &inner() { return *inner_; }

  private:
    std::unique_ptr<WorkloadSource> inner_;
    MtraceWriter *writer_;
    unsigned core_;
};

} // namespace mtrace
} // namespace tdc

#endif // TDC_TRACE_RECORD_HH
