#include "trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/logging.hh"

namespace tdc {

namespace {

constexpr char magic[8] = {'T', 'D', 'C', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t formatVersion = 1;

struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t flags;
};
static_assert(sizeof(FileHeader) == 16);

struct FileRecord
{
    std::uint64_t vaddr;
    std::uint32_t nonMemInsts;
    std::uint8_t type;
    std::uint8_t dependent;
    std::uint16_t pad;
};
static_assert(sizeof(FileRecord) == 16);

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal("cannot open trace file '{}' for writing", path);
    FileHeader h{};
    std::memcpy(h.magic, magic, sizeof(magic));
    h.version = formatVersion;
    h.flags = 0;
    out_.write(reinterpret_cast<const char *>(&h), sizeof(h));
}

TraceWriter::~TraceWriter()
{
    if (!closed_)
        close();
}

void
TraceWriter::write(const TraceRecord &rec)
{
    tdc_assert(!closed_, "write after close");
    FileRecord fr{};
    fr.vaddr = rec.vaddr;
    fr.nonMemInsts = rec.nonMemInsts;
    fr.type = static_cast<std::uint8_t>(rec.type);
    fr.dependent = rec.dependent ? 1 : 0;
    out_.write(reinterpret_cast<const char *>(&fr), sizeof(fr));
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    out_.flush();
    out_.close();
    closed_ = true;
}

FileTraceSource::FileTraceSource(const std::string &path,
                                 std::size_t buffer_records)
    : path_(path), in_(path, std::ios::binary),
      bufCap_(buffer_records > 0 ? buffer_records : 1)
{
    if (!in_)
        fatal("cannot open trace file '{}'", path);
    FileHeader h{};
    in_.read(reinterpret_cast<char *>(&h), sizeof(h));
    if (!in_ || std::memcmp(h.magic, magic, sizeof(magic)) != 0)
        fatal("'{}' is not a TDC trace file", path);
    if (h.version != formatVersion)
        fatal("trace file '{}' has unsupported version {}", path,
              h.version);

    // The record count comes from the file size, so replay needs a
    // fixed-size buffer rather than the whole trace in memory. A
    // trailing partial record is ignored, exactly as the old
    // read-until-EOF loop did.
    in_.seekg(0, std::ios::end);
    const auto end = in_.tellg();
    if (end < static_cast<std::streamoff>(sizeof(FileHeader)))
        fatal("trace file '{}' contains no records", path);
    totalRecords_ = (static_cast<std::size_t>(end) - sizeof(FileHeader))
                    / sizeof(FileRecord);
    if (totalRecords_ == 0)
        fatal("trace file '{}' contains no records", path);
    in_.seekg(sizeof(FileHeader), std::ios::beg);
    buf_.reserve(std::min(bufCap_, totalRecords_));
}

void
FileTraceSource::fill()
{
    if (nextFileRecord_ == totalRecords_) {
        // Wrap: the source loops forever over the file's records.
        in_.clear();
        in_.seekg(sizeof(FileHeader), std::ios::beg);
        nextFileRecord_ = 0;
    }
    const std::size_t want =
        std::min(bufCap_, totalRecords_ - nextFileRecord_);
    buf_.resize(want);
    std::vector<FileRecord> raw(want);
    in_.read(reinterpret_cast<char *>(raw.data()),
             static_cast<std::streamsize>(want * sizeof(FileRecord)));
    if (static_cast<std::size_t>(in_.gcount())
        != want * sizeof(FileRecord))
        fatal("trace file '{}' shrank while being replayed", path_);
    for (std::size_t i = 0; i < want; ++i) {
        TraceRecord &rec = buf_[i];
        rec.vaddr = raw[i].vaddr;
        rec.nonMemInsts = raw[i].nonMemInsts;
        rec.type = static_cast<AccessType>(raw[i].type);
        rec.dependent = raw[i].dependent != 0;
    }
    nextFileRecord_ += want;
    bufPos_ = 0;
}

TraceRecord
FileTraceSource::next()
{
    if (bufPos_ == buf_.size())
        fill();
    return buf_[bufPos_++];
}

void
FileTraceSource::reset()
{
    in_.clear();
    in_.seekg(sizeof(FileHeader), std::ios::beg);
    nextFileRecord_ = 0;
    buf_.clear();
    bufPos_ = 0;
}

void
captureTrace(TraceSource &source, const std::string &path,
             std::uint64_t count)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
}

} // namespace tdc
