#include "trace/trace_file.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"

namespace tdc {

namespace {

constexpr char magic[8] = {'T', 'D', 'C', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t formatVersion = 1;

struct FileHeader
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t flags;
};
static_assert(sizeof(FileHeader) == 16);

struct FileRecord
{
    std::uint64_t vaddr;
    std::uint32_t nonMemInsts;
    std::uint8_t type;
    std::uint8_t dependent;
    std::uint16_t pad;
};
static_assert(sizeof(FileRecord) == 16);

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal("cannot open trace file '{}' for writing", path);
    FileHeader h{};
    std::memcpy(h.magic, magic, sizeof(magic));
    h.version = formatVersion;
    h.flags = 0;
    out_.write(reinterpret_cast<const char *>(&h), sizeof(h));
}

TraceWriter::~TraceWriter()
{
    if (!closed_)
        close();
}

void
TraceWriter::write(const TraceRecord &rec)
{
    tdc_assert(!closed_, "write after close");
    FileRecord fr{};
    fr.vaddr = rec.vaddr;
    fr.nonMemInsts = rec.nonMemInsts;
    fr.type = static_cast<std::uint8_t>(rec.type);
    fr.dependent = rec.dependent ? 1 : 0;
    out_.write(reinterpret_cast<const char *>(&fr), sizeof(fr));
    ++count_;
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    out_.flush();
    out_.close();
    closed_ = true;
}

FileTraceSource::FileTraceSource(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open trace file '{}'", path);
    FileHeader h{};
    in.read(reinterpret_cast<char *>(&h), sizeof(h));
    if (!in || std::memcmp(h.magic, magic, sizeof(magic)) != 0)
        fatal("'{}' is not a TDC trace file", path);
    if (h.version != formatVersion)
        fatal("trace file '{}' has unsupported version {}", path,
              h.version);

    FileRecord fr{};
    while (in.read(reinterpret_cast<char *>(&fr), sizeof(fr))) {
        TraceRecord rec;
        rec.vaddr = fr.vaddr;
        rec.nonMemInsts = fr.nonMemInsts;
        rec.type = static_cast<AccessType>(fr.type);
        rec.dependent = fr.dependent != 0;
        records_.push_back(rec);
    }
    if (records_.empty())
        fatal("trace file '{}' contains no records", path);
}

TraceRecord
FileTraceSource::next()
{
    const TraceRecord rec = records_[pos_];
    pos_ = (pos_ + 1) % records_.size();
    return rec;
}

void
FileTraceSource::reset()
{
    pos_ = 0;
}

void
captureTrace(TraceSource &source, const std::string &path,
             std::uint64_t count)
{
    TraceWriter writer(path);
    for (std::uint64_t i = 0; i < count; ++i)
        writer.write(source.next());
    writer.close();
}

} // namespace tdc
