/**
 * @file
 * Replay of recorded tdc-mtrace-v1 traces through the TraceSource
 * interface, so a trace file drives the existing OooCore/MemorySystem
 * unchanged.
 *
 * One ReplayTraceSource replays one core's stream. The reader behind it
 * is shared: all cores of a multi-core replay (and all jobs of a sweep
 * replaying the same file) reference one mapped, validated MtraceReader
 * through acquireReader()'s process-wide cache, which re-opens a path
 * whenever the file's content changes (keyed on size plus a cheap
 * fingerprint of the verified header's section checksums, so even a
 * same-size in-place rewrite within mtime granularity is detected).
 *
 * Checkpoint discipline: the replay cursor's entire warm state is its
 * monotonic absolute position, so saveState() is one u64 and
 * loadState() is a seek -- O(blockRecords) thanks to the block index.
 */

#ifndef TDC_TRACE_REPLAY_HH
#define TDC_TRACE_REPLAY_HH

#include <memory>
#include <string>

#include "trace/mtrace.hh"
#include "trace/trace.hh"

namespace tdc {
namespace mtrace {

/** Replays one core stream of a shared reader; loops at stream end. */
class ReplayTraceSource : public WorkloadSource
{
  public:
    ReplayTraceSource(std::shared_ptr<const MtraceReader> reader,
                      unsigned core);

    TraceRecord next() override { return cursor_.next(); }
    void reset() override { cursor_.seek(0); }

    void saveState(ckpt::Serializer &out) const override;
    void loadState(ckpt::Deserializer &in) override;

    const MtraceReader &reader() const { return *reader_; }
    std::uint64_t position() const { return cursor_.position(); }

  private:
    std::shared_ptr<const MtraceReader> reader_;
    MtraceCursor cursor_;
};

/**
 * Opens (or reuses) the process-wide reader for `path`. Thread-safe;
 * fatal() -- catchable -- on a missing, truncated or corrupt file, so
 * registry/manifest validation of a `trace:` workload fails loudly at
 * parse time instead of mid-sweep.
 */
std::shared_ptr<const MtraceReader>
acquireReader(const std::string &path);

} // namespace mtrace
} // namespace tdc

#endif // TDC_TRACE_REPLAY_HH
