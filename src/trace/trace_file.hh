/**
 * @file
 * Binary trace file I/O.
 *
 * Synthetic generation is fast enough that the experiment harness never
 * stores traces, but a file format matters for interoperability: traces
 * captured elsewhere (Pin, DynamoRIO, another simulator) can drive this
 * model, and generated traces can be exported for inspection.
 *
 * Format: a 16-byte header ("TDCTRACE", version, flags) followed by
 * fixed-size little-endian records:
 *
 *   u64 vaddr | u32 nonMemInsts | u8 type | u8 dependent | u16 pad
 */

#ifndef TDC_TRACE_TRACE_FILE_HH
#define TDC_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace tdc {

/** Streams TraceRecords to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void write(const TraceRecord &rec);

    /** Flushes and finalizes the file. */
    void close();

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/**
 * Replays a trace file; loops when it reaches the end.
 *
 * Records are streamed from disk through a bounded read buffer
 * (`buffer_records` at a time), so a multi-GB trace costs a fixed
 * amount of memory instead of being loaded whole. reset() rewinds to
 * the first record and refills from the file, so the replayed stream
 * is byte-for-byte the same on every pass.
 */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path,
                             std::size_t buffer_records = 4096);

    TraceRecord next() override;
    void reset() override;

    std::size_t records() const { return totalRecords_; }

  private:
    /** Reads the next chunk, wrapping to the first record at EOF. */
    void fill();

    std::string path_;
    std::ifstream in_;
    std::size_t totalRecords_ = 0;
    std::size_t nextFileRecord_ = 0; //!< next record index to read
    std::vector<TraceRecord> buf_;
    std::size_t bufPos_ = 0;
    std::size_t bufCap_;
};

/** Captures `count` records from any source into a file. */
void captureTrace(TraceSource &source, const std::string &path,
                  std::uint64_t count);

} // namespace tdc

#endif // TDC_TRACE_TRACE_FILE_HH
