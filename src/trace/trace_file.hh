/**
 * @file
 * Binary trace file I/O.
 *
 * Synthetic generation is fast enough that the experiment harness never
 * stores traces, but a file format matters for interoperability: traces
 * captured elsewhere (Pin, DynamoRIO, another simulator) can drive this
 * model, and generated traces can be exported for inspection.
 *
 * Format: a 16-byte header ("TDCTRACE", version, flags) followed by
 * fixed-size little-endian records:
 *
 *   u64 vaddr | u32 nonMemInsts | u8 type | u8 dependent | u16 pad
 */

#ifndef TDC_TRACE_TRACE_FILE_HH
#define TDC_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace tdc {

/** Streams TraceRecords to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void write(const TraceRecord &rec);

    /** Flushes and finalizes the file. */
    void close();

    std::uint64_t recordsWritten() const { return count_; }

  private:
    std::ofstream out_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** Replays a trace file; loops when it reaches the end. */
class FileTraceSource : public TraceSource
{
  public:
    explicit FileTraceSource(const std::string &path);

    TraceRecord next() override;
    void reset() override;

    std::size_t records() const { return records_.size(); }

  private:
    std::vector<TraceRecord> records_;
    std::size_t pos_ = 0;
};

/** Captures `count` records from any source into a file. */
void captureTrace(TraceSource &source, const std::string &path,
                  std::uint64_t count);

} // namespace tdc

#endif // TDC_TRACE_TRACE_FILE_HH
