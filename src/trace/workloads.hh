/**
 * @file
 * Workload registry: synthetic profiles standing in for the paper's
 * SPEC CPU2006 SimPoint slices and PARSEC runs.
 *
 * Each profile is calibrated to the first-order properties that drive
 * the evaluation -- memory intensity (L3 MPKI), footprint relative to
 * the DRAM-cache sizes swept in Fig. 10, page-level reuse (sweep count
 * within a run), spatial run length and write fraction. Absolute IPCs
 * will differ from the paper's testbed; the relative behaviour of the
 * cache organizations is what these profiles preserve. See DESIGN.md.
 */

#ifndef TDC_TRACE_WORKLOADS_HH
#define TDC_TRACE_WORKLOADS_HH

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/synthetic.hh"

namespace tdc {

struct WorkloadProfile
{
    std::string name;
    SyntheticParams base;
    /** PARSEC-style: 4 threads sharing one address space. */
    bool multithreaded = false;
};

/** Looks a profile up by name; fatal() on unknown names. */
const WorkloadProfile &getWorkload(std::string_view name);

/** The 11 memory-bound SPEC CPU 2006 stand-ins (Fig. 7 / Fig. 8). */
const std::vector<std::string> &spec11Names();

/** Table 5: the eight quad-program mixes. */
const std::vector<std::array<std::string, 4>> &table5Mixes();

/** The four PARSEC programs of Section 5.3. */
const std::vector<std::string> &parsecNames();

/**
 * Builds the generator for one hardware context.
 *
 * For multithreaded profiles all threads share the footprint and hot
 * set (same process); seeds and singleton regions are per-thread. For
 * single-programmed profiles `thread` simply perturbs the seed.
 */
std::unique_ptr<SyntheticTraceGen>
makeGenerator(const WorkloadProfile &profile, unsigned thread);

} // namespace tdc

#endif // TDC_TRACE_WORKLOADS_HH
