/**
 * @file
 * Workload registry: synthetic profiles standing in for the paper's
 * SPEC CPU2006 SimPoint slices and PARSEC runs, plus recorded traces.
 *
 * Each synthetic profile is calibrated to the first-order properties
 * that drive the evaluation -- memory intensity (L3 MPKI), footprint
 * relative to the DRAM-cache sizes swept in Fig. 10, page-level reuse
 * (sweep count within a run), spatial run length and write fraction.
 * Absolute IPCs will differ from the paper's testbed; the relative
 * behaviour of the cache organizations is what these profiles
 * preserve. See DESIGN.md.
 *
 * Recorded tdc-mtrace-v1 traces are first-class workloads spelled
 * `trace:<path>`: getWorkload() validates the file (catchably fatal on
 * a missing or corrupt trace) and registers a dynamic profile, so
 * every consumer -- tdc_sim, sweep manifests, the serve layer -- uses
 * one workload vocabulary for both kinds.
 */

#ifndef TDC_TRACE_WORKLOADS_HH
#define TDC_TRACE_WORKLOADS_HH

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "trace/synthetic.hh"

namespace tdc {

enum class WorkloadKind
{
    Synthetic,
    Trace, //!< replay of a recorded tdc-mtrace-v1 file
};

struct WorkloadProfile
{
    std::string name;
    WorkloadKind kind = WorkloadKind::Synthetic;
    SyntheticParams base;
    /** PARSEC-style: 4 threads sharing one address space. */
    bool multithreaded = false;
    /** Trace workloads: path to the tdc-mtrace-v1 file. */
    std::string tracePath;
};

/**
 * Looks a profile up by name; fatal() on unknown names. `trace:<path>`
 * names validate the trace file on first sight (fatal on a missing or
 * corrupt file) and register a dynamic Trace profile; references stay
 * valid for the process lifetime and lookup is thread-safe.
 */
const WorkloadProfile &getWorkload(std::string_view name);

/** True for `trace:<path>`-spelled workload names. */
bool isTraceWorkload(std::string_view name);

/** The `<path>` of a `trace:<path>` name; fatal() if empty/not one. */
std::string tracePathOf(std::string_view name);

/** The 11 memory-bound SPEC CPU 2006 stand-ins (Fig. 7 / Fig. 8). */
const std::vector<std::string> &spec11Names();

/** Table 5: the eight quad-program mixes. */
const std::vector<std::array<std::string, 4>> &table5Mixes();

/** The four PARSEC programs of Section 5.3. */
const std::vector<std::string> &parsecNames();

/**
 * Builds the synthetic generator for one hardware context; fatal() on
 * a Trace profile (use makeWorkloadSource). Kept separate because the
 * non-cacheable-page case studies need the generator's
 * isLowReusePage() oracle.
 *
 * For multithreaded profiles all threads share the footprint and hot
 * set (same process); seeds and singleton regions are per-thread. For
 * single-programmed profiles `thread` simply perturbs the seed.
 */
std::unique_ptr<SyntheticTraceGen>
makeGenerator(const WorkloadProfile &profile, unsigned thread);

/**
 * Builds the workload source for one hardware context of either kind.
 * A Trace profile used here must be single-core (a multi-core trace
 * runs only as the sole workload, where the System binds stream i to
 * core i directly); `thread` is ignored for traces, which have no
 * seed to perturb.
 */
std::unique_ptr<WorkloadSource>
makeWorkloadSource(const WorkloadProfile &profile, unsigned thread);

} // namespace tdc

#endif // TDC_TRACE_WORKLOADS_HH
