#include "trace/synthetic.hh"

#include <algorithm>

#include "ckpt/stats_io.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace tdc {

SyntheticTraceGen::SyntheticTraceGen(const SyntheticParams &params)
    : params_(params), rng_(params.seed)
{
    tdc_assert(params_.footprintPages > 0, "empty footprint");
    tdc_assert(params_.memRefFraction > 0.0
                   && params_.memRefFraction <= 1.0,
               "memRefFraction out of range");
    const double total = params_.hotWeight + params_.streamWeight
                         + params_.chaseWeight + params_.singletonWeight;
    tdc_assert(total > 0.0, "all mixture weights zero");
    cHot_ = params_.hotWeight / total;
    cStream_ = cHot_ + params_.streamWeight / total;
    cChase_ = cStream_ + params_.chaseWeight / total;

    if (params_.hotPages > 0 && params_.hotWeight > 0.0) {
        zipf_ = std::make_unique<ZipfSampler>(
            static_cast<std::size_t>(params_.hotPages), params_.zipfSkew);
    }

    avgGap_ = std::max(0.0, 1.0 / params_.memRefFraction - 1.0);
    reset();
}

void
SyntheticTraceGen::reset()
{
    rng_ = Pcg32(params_.seed);
    streamPage_ = 0;
    streamLine_ = 0;
    runStartLine_ = 0;
    singletonPage_ = 0;
    singletonLine_ = 0;
}

PageNum
SyntheticTraceGen::footprintFirstVpn() const
{
    return pageOf(params_.baseVaddr) + params_.hotPages;
}

PageNum
SyntheticTraceGen::footprintEndVpn() const
{
    return footprintFirstVpn() + params_.footprintPages;
}

PageNum
SyntheticTraceGen::singletonFirstVpn() const
{
    return footprintEndVpn() + params_.singletonRegionOffsetPages;
}

bool
SyntheticTraceGen::isLowReusePage(PageNum vpn, unsigned threshold) const
{
    if (vpn >= singletonFirstVpn())
        return true;
    if (vpn >= footprintFirstVpn() && params_.streamWeight == 0.0
        && params_.chaseWeight > 0.0) {
        // Pure pointer-chase footprints see ~uniform touches; treat the
        // whole region as low reuse only if the expected count is tiny.
        return params_.footprintPages > 64 * threshold;
    }
    return false;
}

SyntheticTraceGen::Cls
SyntheticTraceGen::pickClass()
{
    const double u = rng_.uniform();
    if (u < cHot_ && zipf_)
        return Cls::Hot;
    if (u < cStream_)
        return Cls::Stream;
    if (u < cChase_)
        return Cls::Chase;
    return Cls::Singleton;
}

Addr
SyntheticTraceGen::hotRef()
{
    const auto rank = zipf_->sample(rng_);
    const PageNum vpn = pageOf(params_.baseVaddr) + rank;
    const unsigned line = rng_.below(linesPerPage);
    return pageBase(vpn) + std::uint64_t{line} * cacheLineBytes;
}

Addr
SyntheticTraceGen::streamRef()
{
    const PageNum vpn = footprintFirstVpn() + streamPage_;
    const unsigned line =
        (runStartLine_ + streamLine_) % linesPerPage;
    const Addr addr = pageBase(vpn) + std::uint64_t{line} * cacheLineBytes;

    if (++streamLine_ >= params_.seqRunLines) {
        streamLine_ = 0;
        // Start the next page's run at a rotated offset so row-buffer
        // behaviour is not artificially aligned.
        runStartLine_ = (runStartLine_ + 7) % linesPerPage;
        if (++streamPage_ >= params_.footprintPages)
            streamPage_ = 0; // wrap: re-sweep the footprint
    }
    return addr;
}

Addr
SyntheticTraceGen::chaseRef()
{
    const PageNum vpn =
        footprintFirstVpn() + rng_.below64(params_.footprintPages);
    const unsigned line = rng_.below(linesPerPage);
    return pageBase(vpn) + std::uint64_t{line} * cacheLineBytes;
}

Addr
SyntheticTraceGen::singletonRef()
{
    const PageNum vpn = singletonFirstVpn() + singletonPage_;
    const unsigned line = singletonLine_;
    if (++singletonLine_ >= params_.singletonRunLines) {
        singletonLine_ = 0;
        ++singletonPage_;
    }
    return pageBase(vpn) + std::uint64_t{line} * cacheLineBytes;
}

TraceRecord
SyntheticTraceGen::next()
{
    TraceRecord rec;
    // Uniform gap in [0, 2*avg) keeps the exact (fractional) mean while
    // decorrelating bursts.
    rec.nonMemInsts = static_cast<std::uint32_t>(
        rng_.uniform() * 2.0 * avgGap_ + 0.5);
    rec.type = rng_.chance(params_.writeFraction) ? AccessType::Store
                                                  : AccessType::Load;
    const Cls cls = pickClass();
    switch (cls) {
      case Cls::Hot:
        rec.vaddr = hotRef();
        break;
      case Cls::Stream:
        rec.vaddr = streamRef();
        break;
      case Cls::Chase:
        rec.vaddr = chaseRef();
        break;
      case Cls::Singleton:
        rec.vaddr = singletonRef();
        break;
    }
    if (rec.type == AccessType::Load) {
        rec.dependent =
            cls == Cls::Chase || rng_.chance(params_.depFraction);
    }
    return rec;
}

void
SyntheticTraceGen::saveState(ckpt::Serializer &out) const
{
    ckpt::save(out, rng_);
    out.putU64(streamPage_);
    out.putU32(streamLine_);
    out.putU32(runStartLine_);
    out.putU64(singletonPage_);
    out.putU32(singletonLine_);
}

void
SyntheticTraceGen::loadState(ckpt::Deserializer &in)
{
    ckpt::load(in, rng_);
    streamPage_ = in.getU64();
    streamLine_ = in.getU32();
    runStartLine_ = in.getU32();
    singletonPage_ = in.getU64();
    singletonLine_ = in.getU32();
}

} // namespace tdc
