/**
 * @file
 * The versioned memory-trace container `tdc-mtrace-v1`.
 *
 * Replaces the flat legacy TDCTRACE format (trace/trace_file.hh) with a
 * sectioned, checksummed, seekable container that reuses the ckpt
 * Serializer discipline:
 *
 *     offset 0  8 bytes   magic "TDCMTRC\0"
 *               u32       format version (mtraceFormatVersion)
 *               u32       section count
 *     per section, in order:
 *               u64+bytes section name (length-prefixed string)
 *               u64       payload size in bytes
 *               u64       FNV-1a checksum of the payload
 *               bytes     payload
 *
 * Sections, in order:
 *
 *  - "meta":   a length-prefixed JSON string: schema tag, core count,
 *              shared-page-table flag, block size, per-core record
 *              counts and a free-form provenance string;
 *  - "core<i>" (one per core, 0-based): that core's record stream,
 *              encoded in independent blocks of `blockRecords` records;
 *  - "index":  per core, the record count plus a table of
 *              (byte offset, first record index) block references, so
 *              a cursor can seek to any absolute position by decoding
 *              at most one block instead of the whole stream.
 *
 * Record encoding (within a block): one flags byte -- bits 0-1 the
 * AccessType (0 fetch, 1 load, 2 store; 3 invalid), bit 2 the
 * dependent-load flag, bit 3 the sign of the address delta, bits 4-7
 * must be zero -- followed by two LEB128 varints: the non-memory
 * instruction count and |vaddr - previous vaddr|. The delta base
 * restarts at zero on every block boundary (the first record of a block
 * encodes its absolute address), so blocks decode independently.
 *
 * Every decoder is bounds-checked and fatal()s -- catchable via
 * ScopedFatalCapture -- with the offending absolute file offset on any
 * defect: truncation, bad magic/version, checksum mismatch, malformed
 * varint, reserved flag bits, or an index that disagrees with the
 * streams. Malformed input is never undefined behaviour.
 *
 * Note the deliberate tag spelling: "tdc-trace-v1" already names the
 * Perfetto *event* trace schema (src/obs/trace_writer.hh); this
 * *memory* trace container is "tdc-mtrace-v1" (DESIGN.md 12).
 */

#ifndef TDC_TRACE_MTRACE_HH
#define TDC_TRACE_MTRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace tdc {
namespace mtrace {

inline constexpr char mtraceMagic[8] =
    {'T', 'D', 'C', 'M', 'T', 'R', 'C', '\0'};
inline constexpr std::uint32_t mtraceFormatVersion = 1;

/** Schema tag embedded in the "meta" section (and `--info` output). */
inline constexpr const char *mtraceSchema = "tdc-mtrace-v1";

/** Records per block: the seek granularity / delta-restart interval. */
inline constexpr std::uint64_t defaultBlockRecords = 4096;

/** Decoded "meta" section. */
struct MtraceMeta
{
    unsigned cores = 1;
    bool sharedPageTable = false;
    std::uint64_t blockRecords = defaultBlockRecords;
    std::vector<std::uint64_t> records; //!< per-core record counts
    std::string source;                 //!< free-form provenance
};

/** One block reference in the per-core seek index. */
struct BlockRef
{
    std::uint64_t byteOffset = 0;  //!< into the core section payload
    std::uint64_t firstRecord = 0; //!< stream index of its first record
};

/**
 * Accumulates per-core record streams in memory and writes the whole
 * container on close() (write-to-temp + atomic rename). The in-memory
 * cost is the encoded size (~2-4 bytes/record), not TraceRecords.
 */
class MtraceWriter
{
  public:
    MtraceWriter(std::string path, unsigned cores,
                 bool shared_page_table, std::string source,
                 std::uint64_t block_records = defaultBlockRecords);
    ~MtraceWriter();

    MtraceWriter(const MtraceWriter &) = delete;
    MtraceWriter &operator=(const MtraceWriter &) = delete;

    void append(unsigned core, const TraceRecord &rec);

    /** Encodes and publishes the file; idempotent. Every core must
     *  have at least one record (replay sources never run dry). */
    void close();

    std::uint64_t recordsWritten(unsigned core) const;
    std::uint64_t totalRecords() const;
    const std::string &path() const { return path_; }
    bool closed() const { return closed_; }

  private:
    struct Stream
    {
        std::vector<std::uint8_t> bytes;
        std::vector<BlockRef> blocks;
        std::uint64_t count = 0;
        Addr prev = 0;
    };

    std::string path_;
    bool sharedPt_;
    std::string source_;
    std::uint64_t blockRecords_;
    std::vector<Stream> streams_;
    bool closed_ = false;
};

/**
 * An immutable, validated view of one trace file. The file is mapped
 * read-only (falling back to a heap copy where mmap is unavailable);
 * open validates the header, the meta and index sections and every
 * section checksum. Thread-safe once constructed: cursors carry all
 * mutable state.
 */
class MtraceReader
{
  public:
    explicit MtraceReader(const std::string &path);
    ~MtraceReader();

    MtraceReader(const MtraceReader &) = delete;
    MtraceReader &operator=(const MtraceReader &) = delete;

    const MtraceMeta &meta() const { return meta_; }
    unsigned coreCount() const { return meta_.cores; }
    bool sharedPageTable() const { return meta_.sharedPageTable; }
    std::uint64_t records(unsigned core) const;
    std::uint64_t totalRecords() const;
    const std::string &path() const { return path_; }
    std::uint64_t fileBytes() const { return size_; }

    /** Section table (name, payload bytes, checksum) for --info. */
    struct SectionInfo
    {
        std::string name;
        std::uint64_t bytes = 0;
        std::uint64_t checksum = 0;
    };
    const std::vector<SectionInfo> &sections() const
    {
        return sections_;
    }

    /**
     * Decodes every record of every stream and cross-checks block
     * boundaries against the index; fatal() on any defect. O(file), so
     * it backs `tdc_trace --verify` and tests rather than open().
     */
    void verifyAll() const;

  private:
    friend class MtraceCursor;

    struct CoreStream
    {
        const std::uint8_t *data = nullptr;
        std::uint64_t size = 0;
        std::uint64_t fileOffset = 0; //!< for error messages
        std::uint64_t count = 0;
        std::vector<BlockRef> blocks;
    };

    void mapFile();
    void parse();

    std::string path_;
    const std::uint8_t *data_ = nullptr;
    std::uint64_t size_ = 0;
    bool mapped_ = false;
    std::vector<std::uint8_t> fallback_;

    MtraceMeta meta_;
    std::vector<SectionInfo> sections_;
    std::vector<CoreStream> cores_;
};

/**
 * A decoding cursor over one core's stream. `position()` is the
 * monotonic absolute record position (it does not wrap); the record
 * returned by the next next() call is position() % records. seek()
 * restores any position by jumping to the enclosing block and decoding
 * forward, so replay state save/restore is O(blockRecords).
 */
class MtraceCursor
{
  public:
    MtraceCursor(const MtraceReader &reader, unsigned core);

    TraceRecord next();
    void seek(std::uint64_t position);
    std::uint64_t position() const { return position_; }

  private:
    TraceRecord decodeOne();
    void loadBlock(std::uint64_t block);
    [[noreturn]] void corrupt(std::uint64_t at, const std::string &what)
        const;

    const MtraceReader *reader_;
    const MtraceReader::CoreStream *cs_;
    unsigned core_;
    std::uint64_t pos_ = 0;      //!< byte position within the payload
    std::uint64_t idx_ = 0;      //!< record index within the stream
    std::uint64_t blockIdx_ = 0;
    std::uint64_t blockEnd_ = 0; //!< first record index past the block
    Addr prev_ = 0;
    std::uint64_t position_ = 0;
};

/**
 * FNV-1a over the file's raw bytes. This is what ties checkpoints and
 * cached results to trace *content*: warmFingerprint() and the serve
 * layer's jobConfigHash() fold it in for every `trace:` workload, so
 * editing a trace file in place invalidates everything keyed on it.
 */
std::uint64_t traceContentHash(const std::string &path);

/** Conversion tallies reported by the tdc_trace converters. */
struct ConvertStats
{
    std::uint64_t instructions = 0; //!< input instructions consumed
    std::uint64_t records = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

/**
 * Converts a raw (decompressed) ChampSim instruction trace -- 64-byte
 * records: u64 ip, u8 is_branch, u8 branch_taken, u8 dest_regs[2],
 * u8 src_regs[4], u64 dest_mem[2], u64 src_mem[4] -- into a
 * single-core tdc-mtrace-v1 file. Each non-zero memory operand becomes
 * one record (src_mem loads first, then dest_mem stores); instructions
 * without memory operands accumulate into the next record's
 * nonMemInsts. Loads of branch instructions are marked dependent (the
 * value steers control, so the core cannot run ahead of it).
 * Instruction fetches are not modeled, matching the synthetic sources.
 */
ConvertStats convertChampSim(
    const std::string &in, const std::string &out,
    std::uint64_t block_records = defaultBlockRecords);

/** Converts a legacy TDCTRACE file (trace/trace_file.hh) in place. */
ConvertStats convertLegacy(
    const std::string &in, const std::string &out,
    std::uint64_t block_records = defaultBlockRecords);

} // namespace mtrace
} // namespace tdc

#endif // TDC_TRACE_MTRACE_HH
