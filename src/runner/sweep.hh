/**
 * @file
 * Sweep descriptions: one JobSpec per simulation design point, and a
 * SweepManifest that names an ordered list of them.
 *
 * A manifest can be composed programmatically (benches, tdc_check),
 * built as a cross product of axes, or loaded from a JSON document:
 *
 *   {
 *     "schema": "tdc-sweep-manifest-v1",
 *     "name": "smoke",
 *     "timeout_seconds": 0,
 *     "base": { "insts_per_core": 100000, "warmup_insts": 50000,
 *               "l3_size_bytes": 1073741824,
 *               "raw": { "l3.policy": "fifo" } },
 *     "axes": { "org": ["ctlb", "sram"],
 *               "workload": ["libquantum", "mcf"],
 *               "l3_size_mb": [1024] },
 *     "jobs": [ { "label": "...", "org": "ctlb",
 *                 "workloads": ["mcf", "milc", "mcf", "milc"] } ]
 *   }
 *
 * "axes" expands to its cross product (org outermost, then workload,
 * then size) with labels "<org>/<workload>[@<mb>MB]"; explicit "jobs"
 * entries follow, inheriting unset fields from "base". Manifest order
 * is the contract: runners report results in exactly this order, so
 * aggregated output is byte-deterministic at any worker count.
 */

#ifndef TDC_RUNNER_SWEEP_HH
#define TDC_RUNNER_SWEEP_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "dramcache/org_factory.hh"
#include "sys/system.hh"

namespace tdc {
namespace runner {

/** Thrown on malformed or semantically invalid manifest input. */
class ManifestError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Schema tag stamped into every serialized manifest. */
inline constexpr const char *sweepManifestSchema =
    "tdc-sweep-manifest-v1";

/** One independent design point. */
struct JobSpec
{
    std::string label;
    OrgKind org = OrgKind::Tagless;
    std::vector<std::string> workloads;
    std::uint64_t l3SizeBytes = 1ULL << 30;
    std::uint64_t instsPerCore = 1'000'000;
    std::uint64_t warmupInsts = 500'000;
    Config raw;

    SystemConfig toSystemConfig() const;
    json::Value toJson() const;
};

struct SweepManifest
{
    std::string name = "sweep";

    /** Per-job wall-clock budget in seconds; 0 disables the check. */
    double timeoutSeconds = 0.0;

    std::vector<JobSpec> jobs;

    /**
     * Parses a manifest document, expanding "axes" and validating
     * every organization and workload name up front (so a typo fails
     * the sweep before any simulation starts). Throws ManifestError.
     */
    static SweepManifest fromJson(const json::Value &doc);

    /** fromJson(readFile(path)); throws ManifestError on I/O too. */
    static SweepManifest load(const std::string &path);

    /**
     * Serializes with every job explicit (axes already expanded);
     * fromJson(toJson()) reproduces the same job list.
     */
    json::Value toJson() const;

    /**
     * Builds the cross product orgs x workloads x sizes with the
     * canonical labels; every job uses the given budgets and raw
     * overrides.
     */
    static SweepManifest
    crossProduct(const std::string &name,
                 const std::vector<OrgKind> &orgs,
                 const std::vector<std::string> &workloads,
                 const std::vector<std::uint64_t> &l3_sizes_bytes,
                 std::uint64_t insts, std::uint64_t warmup,
                 const Config &raw = {});

    /** Fails (ManifestError) on empty job lists or duplicate labels. */
    void validate() const;
};

/** A job label reduced to filesystem-safe characters ([a-zA-Z0-9._-],
 *  everything else mapped to '_'); used for per-job obs file names and
 *  the sweep service's spool-file names. */
std::string sanitizeJobLabel(const std::string &label);

/**
 * The configuration a shared warm System is built from: the job's
 * config with observability outputs stripped. Observers add no timed
 * state (probes fire into unattached points otherwise), so the warm
 * state is identical -- and the warm System must not claim the measure
 * jobs' trace/time-series files. Used by --warm-once sharing and the
 * sweep service's cross-invocation warm-checkpoint cache.
 */
SystemConfig warmSystemConfig(const JobSpec &job);

/**
 * The deterministic shard `index` of `count`: jobs whose manifest
 * position i satisfies i % count == index, in manifest order, with
 * the name and timeout preserved. Every job lands in exactly one
 * shard, so merging the per-shard reports in manifest order
 * reconstructs the single-machine report byte for byte. Throws
 * ManifestError on count == 0, index >= count, or an empty slice.
 */
SweepManifest shardSlice(const SweepManifest &m, unsigned index,
                         unsigned count);

} // namespace runner
} // namespace tdc

#endif // TDC_RUNNER_SWEEP_HH
