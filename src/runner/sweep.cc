#include "runner/sweep.hh"

#include <set>
#include <utility>

#include "common/format.hh"
#include "common/logging.hh"
#include "trace/workloads.hh"

namespace tdc {
namespace runner {

namespace {

/** orgKindFromString with fatal() converted into ManifestError. */
OrgKind
parseOrg(const std::string &name)
{
    ScopedFatalCapture capture;
    try {
        return orgKindFromString(name);
    } catch (const FatalError &e) {
        throw ManifestError(e.what());
    }
}

/** Rejects unknown workload names before any job runs. */
void
checkWorkload(const std::string &name)
{
    ScopedFatalCapture capture;
    try {
        (void)getWorkload(name);
    } catch (const FatalError &e) {
        throw ManifestError(e.what());
    }
}

const json::Value &
requireObject(const json::Value &doc, std::string_view what)
{
    if (!doc.isObject())
        throw ManifestError(format("{} must be a JSON object", what));
    return doc;
}

std::uint64_t
getUint(const json::Value &obj, std::string_view key,
        std::uint64_t def)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr)
        return def;
    if (!v->isUint())
        throw ManifestError(
            format("'{}' must be an unsigned integer", key));
    return v->asUint();
}

std::string
getString(const json::Value &obj, std::string_view key,
          const std::string &def)
{
    const json::Value *v = obj.find(key);
    if (v == nullptr)
        return def;
    if (!v->isString())
        throw ManifestError(format("'{}' must be a string", key));
    return v->asString();
}

std::vector<std::string>
stringArray(const json::Value &arr, std::string_view what)
{
    if (!arr.isArray())
        throw ManifestError(
            format("'{}' must be an array of strings", what));
    std::vector<std::string> out;
    for (const auto &item : arr.items()) {
        if (!item.isString())
            throw ManifestError(
                format("'{}' must be an array of strings", what));
        out.push_back(item.asString());
    }
    return out;
}

/** Raw overrides are stored as strings; accept any scalar kind. */
Config
parseRaw(const json::Value *obj, const Config &base)
{
    Config raw = base;
    if (obj == nullptr)
        return raw;
    requireObject(*obj, "'raw'");
    for (const auto &[key, v] : obj->members()) {
        switch (v.kind()) {
          case json::Value::Kind::String:
            raw.set(key, v.asString());
            break;
          case json::Value::Kind::Uint:
            raw.set(key, v.asUint());
            break;
          case json::Value::Kind::Double:
            raw.set(key, v.asDouble());
            break;
          case json::Value::Kind::Bool:
            raw.set(key, v.asBool());
            break;
          default:
            throw ManifestError(format(
                "raw override '{}' must be a scalar value", key));
        }
    }
    return raw;
}

/** Defaults inherited by axes expansion and explicit jobs. */
struct BaseSpec
{
    std::uint64_t l3SizeBytes = 1ULL << 30;
    std::uint64_t instsPerCore = 1'000'000;
    std::uint64_t warmupInsts = 500'000;
    Config raw;
};

BaseSpec
parseBase(const json::Value *obj)
{
    BaseSpec base;
    if (obj == nullptr)
        return base;
    requireObject(*obj, "'base'");
    base.l3SizeBytes =
        getUint(*obj, "l3_size_bytes", base.l3SizeBytes);
    base.instsPerCore =
        getUint(*obj, "insts_per_core", base.instsPerCore);
    base.warmupInsts = getUint(*obj, "warmup_insts", base.warmupInsts);
    base.raw = parseRaw(obj->find("raw"), {});
    return base;
}

JobSpec
parseJob(const json::Value &obj, const BaseSpec &base)
{
    requireObject(obj, "each 'jobs' entry");
    if (obj.find("org") == nullptr)
        throw ManifestError("job entry is missing 'org'");

    JobSpec job;
    job.org = parseOrg(getString(obj, "org", ""));
    if (const json::Value *ws = obj.find("workloads")) {
        job.workloads = stringArray(*ws, "workloads");
    } else if (obj.find("workload") != nullptr) {
        job.workloads = {getString(obj, "workload", "")};
    }
    if (job.workloads.empty())
        throw ManifestError("job entry has no workloads");
    for (const auto &w : job.workloads)
        checkWorkload(w);

    job.l3SizeBytes = getUint(obj, "l3_size_bytes", base.l3SizeBytes);
    job.instsPerCore =
        getUint(obj, "insts_per_core", base.instsPerCore);
    job.warmupInsts = getUint(obj, "warmup_insts", base.warmupInsts);
    job.raw = parseRaw(obj.find("raw"), base.raw);

    std::string def_label = std::string(cliName(job.org));
    for (const auto &w : job.workloads)
        def_label += "/" + w;
    job.label = getString(obj, "label", def_label);
    return job;
}

/** Replaces every "{label}" occurrence in s. */
std::string
substituteLabel(std::string s, const std::string &label)
{
    const std::string token = "{label}";
    for (std::size_t pos = s.find(token); pos != std::string::npos;
         pos = s.find(token, pos + label.size()))
        s.replace(pos, token.size(), label);
    return s;
}

} // namespace

std::string
sanitizeJobLabel(const std::string &label)
{
    std::string out = label;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                        || (c >= '0' && c <= '9') || c == '.'
                        || c == '_' || c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

SystemConfig
warmSystemConfig(const JobSpec &job)
{
    SystemConfig cfg = job.toSystemConfig();
    Config raw;
    for (const auto &[key, value] : cfg.raw.entries()) {
        if (key.rfind("obs.", 0) == 0)
            continue;
        raw.set(key, value);
    }
    cfg.raw = std::move(raw);
    cfg.obs = {};
    return cfg;
}

SweepManifest
shardSlice(const SweepManifest &m, unsigned index, unsigned count)
{
    if (count == 0)
        throw ManifestError("shard count must be >= 1");
    if (index >= count)
        throw ManifestError(
            format("shard index {} out of range (count {})", index,
                   count));
    SweepManifest slice;
    slice.name = m.name;
    slice.timeoutSeconds = m.timeoutSeconds;
    for (std::size_t i = index; i < m.jobs.size();
         i += static_cast<std::size_t>(count))
        slice.jobs.push_back(m.jobs[i]);
    if (slice.jobs.empty())
        throw ManifestError(
            format("shard {}/{} of manifest '{}' is empty ({} jobs)",
                   index, count, m.name, m.jobs.size()));
    return slice;
}

SystemConfig
JobSpec::toSystemConfig() const
{
    SystemConfig cfg;
    cfg.org = org;
    cfg.workloads = workloads;
    cfg.l3SizeBytes = l3SizeBytes;
    cfg.instsPerCore = instsPerCore;
    cfg.warmupInsts = warmupInsts;
    cfg.raw = raw;

    // Observability outputs are per-job files: a "{label}" placeholder
    // in an obs.* path expands to this job's (sanitized) label, so one
    // manifest-level override gives every job its own trace/time-series
    // file and parallel workers never share a sink (DESIGN.md 7).
    const std::string safe = sanitizeJobLabel(label);
    for (const char *key : {"obs.trace_out", "obs.timeseries"}) {
        if (cfg.raw.has(key))
            cfg.raw.set(key,
                        substituteLabel(cfg.raw.getString(key, ""), safe));
    }
    return cfg;
}

json::Value
JobSpec::toJson() const
{
    auto v = json::Value::object();
    v.set("label", label);
    v.set("org", cliName(org));
    auto ws = json::Value::array();
    for (const auto &w : workloads)
        ws.push(w);
    v.set("workloads", std::move(ws));
    v.set("l3_size_bytes", l3SizeBytes);
    v.set("insts_per_core", instsPerCore);
    v.set("warmup_insts", warmupInsts);
    if (!raw.entries().empty()) {
        auto r = json::Value::object();
        for (const auto &[key, value] : raw.entries())
            r.set(key, value);
        v.set("raw", std::move(r));
    }
    return v;
}

SweepManifest
SweepManifest::fromJson(const json::Value &doc)
{
    requireObject(doc, "manifest");
    const std::string schema = getString(doc, "schema", "");
    if (!schema.empty() && schema != sweepManifestSchema)
        throw ManifestError(
            format("unsupported manifest schema '{}' (expected {})",
                   schema, sweepManifestSchema));

    SweepManifest m;
    m.name = getString(doc, "name", m.name);
    if (const json::Value *t = doc.find("timeout_seconds")) {
        if (!t->isNumber())
            throw ManifestError("'timeout_seconds' must be a number");
        m.timeoutSeconds = t->asDouble();
    }

    const BaseSpec base = parseBase(doc.find("base"));

    if (const json::Value *axes = doc.find("axes")) {
        requireObject(*axes, "'axes'");
        const json::Value *orgs_v = axes->find("org");
        const json::Value *wl_v = axes->find("workload");
        if (orgs_v == nullptr || wl_v == nullptr)
            throw ManifestError(
                "'axes' needs both 'org' and 'workload' arrays");
        std::vector<OrgKind> orgs;
        for (const auto &name : stringArray(*orgs_v, "axes.org"))
            orgs.push_back(parseOrg(name));
        const auto workloads = stringArray(*wl_v, "axes.workload");
        for (const auto &w : workloads)
            checkWorkload(w);
        std::vector<std::uint64_t> sizes;
        if (const json::Value *sz = axes->find("l3_size_mb")) {
            if (!sz->isArray())
                throw ManifestError(
                    "'axes.l3_size_mb' must be an array");
            for (const auto &item : sz->items()) {
                if (!item.isUint())
                    throw ManifestError(
                        "'axes.l3_size_mb' entries must be unsigned");
                sizes.push_back(item.asUint() << 20);
            }
        }
        if (sizes.empty())
            sizes = {base.l3SizeBytes};
        SweepManifest expanded = crossProduct(
            m.name, orgs, workloads, sizes, base.instsPerCore,
            base.warmupInsts, base.raw);
        m.jobs = std::move(expanded.jobs);
    }

    if (const json::Value *jobs = doc.find("jobs")) {
        if (!jobs->isArray())
            throw ManifestError("'jobs' must be an array");
        for (const auto &entry : jobs->items())
            m.jobs.push_back(parseJob(entry, base));
    }

    m.validate();
    return m;
}

SweepManifest
SweepManifest::load(const std::string &path)
{
    std::string err;
    const auto doc = json::tryReadFile(path, &err);
    if (!doc)
        throw ManifestError(
            format("cannot load manifest {}: {}", path, err));
    return fromJson(*doc);
}

json::Value
SweepManifest::toJson() const
{
    auto doc = json::Value::object();
    doc.set("schema", sweepManifestSchema);
    doc.set("name", name);
    doc.set("timeout_seconds", timeoutSeconds);
    auto arr = json::Value::array();
    for (const auto &job : jobs)
        arr.push(job.toJson());
    doc.set("jobs", std::move(arr));
    return doc;
}

SweepManifest
SweepManifest::crossProduct(
    const std::string &name, const std::vector<OrgKind> &orgs,
    const std::vector<std::string> &workloads,
    const std::vector<std::uint64_t> &l3_sizes_bytes,
    std::uint64_t insts, std::uint64_t warmup, const Config &raw)
{
    if (orgs.empty() || workloads.empty() || l3_sizes_bytes.empty())
        throw ManifestError("cross product over an empty axis");

    SweepManifest m;
    m.name = name;
    for (OrgKind org : orgs) {
        for (const auto &w : workloads) {
            for (std::uint64_t bytes : l3_sizes_bytes) {
                JobSpec job;
                job.org = org;
                job.workloads = {w};
                job.l3SizeBytes = bytes;
                job.instsPerCore = insts;
                job.warmupInsts = warmup;
                job.raw = raw;
                job.label = format("{}/{}", cliName(org), w);
                if (l3_sizes_bytes.size() > 1)
                    job.label +=
                        format("@{}MB", bytes >> 20);
                m.jobs.push_back(std::move(job));
            }
        }
    }
    m.validate();
    return m;
}

void
SweepManifest::validate() const
{
    if (jobs.empty())
        throw ManifestError(
            format("manifest '{}' has no jobs", name));
    std::set<std::string> labels;
    for (const auto &job : jobs) {
        if (job.label.empty())
            throw ManifestError("job with an empty label");
        if (!labels.insert(job.label).second)
            throw ManifestError(
                format("duplicate job label '{}'", job.label));
        if (job.workloads.empty())
            throw ManifestError(
                format("job '{}' has no workloads", job.label));
        if (job.instsPerCore == 0)
            throw ManifestError(
                format("job '{}' has a zero instruction budget",
                       job.label));
    }
}

} // namespace runner
} // namespace tdc
