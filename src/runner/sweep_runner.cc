#include "runner/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>

#include "common/event_log.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "metrics/registry.hh"
#include "runner/thread_pool.hh"
#include "sys/report.hh"

namespace tdc {
namespace runner {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Direct-runner metrics (DESIGN.md 11 catalog). */
struct RunnerMetrics
{
    metrics::Counter &jobs;
    metrics::Counter &failures;
    metrics::Counter &timeouts;
    metrics::Counter &retries;
    metrics::Histogram &jobWall;
};

RunnerMetrics &
runnerMetrics()
{
    auto &r = metrics::registry();
    static RunnerMetrics m{
        r.counter("tdc_runner_jobs_total",
                  "Design points completed by the direct runner"),
        r.counter("tdc_runner_jobs_failed_total",
                  "Direct-runner jobs that failed"),
        r.counter("tdc_runner_jobs_timeout_total",
                  "Direct-runner jobs that exceeded their budget"),
        r.counter("tdc_runner_job_retries_total",
                  "Extra attempts beyond each job's first"),
        r.histogram("tdc_runner_job_wall_seconds",
                    "Per-job wall time in the direct runner",
                    {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                     10.0, 30.0, 60.0, 120.0, 300.0}),
    };
    return m;
}

/** Per-completion progress, via the timestamped leveled sink (and
 *  the JSONL mirror when a sink is attached). */
void
progressLine(const JobResult &r, unsigned done, unsigned total)
{
    std::string line =
        format("[sweep] ({}/{}) {:<7} {:<28} {:.2f}s", done, total,
               statusName(r.status), r.label, r.wallSeconds);
    if (r.ok() && r.kips > 0.0)
        line += format("  {:.0f} KIPS", r.kips);
    if (r.attempts > 1)
        line += format(" (attempt {})", r.attempts);
    if (!r.ok())
        line += format("  {}", r.error);
    inform("{}", line);
}

/**
 * One design point, including the retry loop. When `warm` is non-null
 * the first attempt restores the shared warm checkpoint and only runs
 * the measurement leg; the retry attempt (and the null-warm path) runs
 * warmup + measure in full, so a corrupt shared state can never fail a
 * job permanently.
 */
/** Median of a non-empty sample set (midpoint average for even n). */
double
medianOf(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    return n % 2 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

JobResult
runOne(const JobSpec &job, double timeout_s, bool retry,
       unsigned repeat, const ckpt::Checkpoint *warm = nullptr)
{
    JobResult r;
    r.label = job.label;

    ScopedLogLabel log_label(job.label);
    const unsigned max_attempts = retry ? 2 : 1;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        r.attempts = attempt;
        const auto t0 = Clock::now();
        try {
            // fatal() inside System construction or the run (bad
            // workload, bad override) throws FatalError here instead
            // of exiting the process.
            ScopedFatalCapture capture;
            const SystemConfig cfg = job.toSystemConfig();
            System sys(cfg);
            RunResult rr;
            if (warm != nullptr && attempt == 1) {
                sys.restoreCheckpoint(*warm);
                rr = sys.measure();
            } else {
                rr = sys.run();
            }
            r.wallSeconds = secondsSince(t0);
            if (timeout_s > 0.0 && r.wallSeconds > timeout_s) {
                r.status = JobResult::Status::TimedOut;
                r.error = format(
                    "wall time {:.2f}s exceeded timeout {:.2f}s",
                    r.wallSeconds, timeout_s);
                return r; // retrying would blow the budget again
            }
            r.result = std::move(rr);
            if (repeat > 1) {
                // Median-of-N timing: the simulation is deterministic,
                // so extra repetitions only firm up the host timing.
                std::vector<double> walls{r.wallSeconds};
                for (unsigned rep = 1; rep < repeat; ++rep) {
                    const auto rt0 = Clock::now();
                    System rsys(cfg);
                    if (warm != nullptr && attempt == 1) {
                        rsys.restoreCheckpoint(*warm);
                        rsys.measure();
                    } else {
                        rsys.run();
                    }
                    walls.push_back(secondsSince(rt0));
                }
                r.wallSeconds = medianOf(std::move(walls));
            }
            r.kips = r.wallSeconds > 0.0
                         ? static_cast<double>(r.result.totalInsts)
                               / r.wallSeconds / 1000.0
                         : 0.0;
            r.report = makeRunReport(cfg, r.result);
            r.status = JobResult::Status::Ok;
            r.error.clear();
            return r;
        } catch (const std::exception &e) {
            r.wallSeconds = secondsSince(t0);
            r.status = JobResult::Status::Failed;
            r.error = e.what();
        } catch (...) {
            r.wallSeconds = secondsSince(t0);
            r.status = JobResult::Status::Failed;
            r.error = "unknown exception";
        }
    }
    return r;
}

} // namespace

std::string_view
statusName(JobResult::Status s)
{
    switch (s) {
      case JobResult::Status::Ok: return "ok";
      case JobResult::Status::Failed: return "failed";
      case JobResult::Status::TimedOut: return "timeout";
    }
    return "?";
}

unsigned
SweepRunner::envJobs(unsigned def)
{
    const char *env = std::getenv("TDC_JOBS");
    if (env == nullptr || *env == '\0')
        return def;
    char *end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v == 0) {
        warn("ignoring malformed TDC_JOBS='{}'", env);
        return def;
    }
    return static_cast<unsigned>(v);
}

unsigned
SweepRunner::effectiveWorkers(std::size_t n) const
{
    unsigned workers =
        opt_.jobs != 0 ? opt_.jobs : ThreadPool::defaultConcurrency();
    if (n > 0 && workers > n)
        workers = static_cast<unsigned>(n);
    return std::max(workers, 1u);
}

std::vector<JobResult>
SweepRunner::run(const SweepManifest &manifest) const
{
    manifest.validate();
    const auto n = static_cast<unsigned>(manifest.jobs.size());
    std::vector<JobResult> results(n);

    std::atomic<unsigned> done{0};
    const bool progress = opt_.progress;
    const bool retry = opt_.retryOnFailure;
    const unsigned repeat = std::max(opt_.repeat, 1u);
    const double timeout_s = manifest.timeoutSeconds;

    // Phase 1 (shareWarmups): one warm System per distinct warm
    // fingerprint, checkpointed in memory. Jobs that share a group
    // differ only in measure-phase configuration, so the restored
    // state is exactly what each job's own warmup would have produced.
    struct WarmGroup
    {
        unsigned firstJob = 0;
        std::vector<unsigned> jobs;
        std::shared_ptr<const ckpt::Checkpoint> ckpt;
    };
    std::vector<WarmGroup> groups;
    std::vector<const ckpt::Checkpoint *> warm(n, nullptr);
    if (opt_.shareWarmups) {
        std::map<std::uint64_t, unsigned> index;
        for (unsigned i = 0; i < n; ++i) {
            const std::uint64_t fp =
                warmFingerprint(manifest.jobs[i].toSystemConfig());
            auto [it, fresh] = index.emplace(
                fp, static_cast<unsigned>(groups.size()));
            if (fresh)
                groups.push_back(WarmGroup{i, {}, nullptr});
            groups[it->second].jobs.push_back(i);
        }

        ThreadPool pool(
            effectiveWorkers(static_cast<unsigned>(groups.size())));
        std::vector<std::future<void>> pending;
        pending.reserve(groups.size());
        for (auto &g : groups) {
            pending.push_back(pool.submit([&, progress] {
                const JobSpec &job = manifest.jobs[g.firstJob];
                ScopedLogLabel log_label("warm " + job.label);
                const auto t0 = Clock::now();
                try {
                    ScopedFatalCapture capture;
                    System sys(warmSystemConfig(job));
                    sys.warmup();
                    g.ckpt = std::make_shared<const ckpt::Checkpoint>(
                        sys.makeCheckpoint());
                    if (progress) {
                        inform("[sweep] warm    {:<28} {:.2f}s  "
                               "shared by {} job(s)",
                               job.label, secondsSince(t0),
                               g.jobs.size());
                    }
                } catch (const std::exception &e) {
                    // Leave ckpt null: the group's jobs fall back to
                    // full warmup+measure runs.
                    warn("warm run for '{}' failed ({}); its {} job(s) "
                         "run unshared",
                         job.label, e.what(), g.jobs.size());
                }
            }));
        }
        for (auto &f : pending)
            f.get();
        for (const auto &g : groups) {
            for (unsigned i : g.jobs)
                warm[i] = g.ckpt.get();
        }
    }

    {
        ThreadPool pool(effectiveWorkers(n));
        std::vector<std::future<void>> pending;
        pending.reserve(n);
        for (unsigned i = 0; i < n; ++i) {
            pending.push_back(pool.submit([&, i] {
                results[i] = runOne(manifest.jobs[i], timeout_s, retry,
                                    repeat, warm[i]);
                const JobResult &r = results[i];
                RunnerMetrics &rm = runnerMetrics();
                rm.jobs.inc();
                if (r.status == JobResult::Status::Failed)
                    rm.failures.inc();
                else if (r.status == JobResult::Status::TimedOut)
                    rm.timeouts.inc();
                if (r.attempts > 1)
                    rm.retries.inc(r.attempts - 1);
                rm.jobWall.observe(r.wallSeconds);
                {
                    auto fields = json::Value::object();
                    fields.set("label", r.label);
                    fields.set("status",
                               std::string(statusName(r.status)));
                    fields.set("attempts",
                               std::uint64_t{r.attempts});
                    fields.set("wall_seconds", r.wallSeconds);
                    if (r.ok())
                        fields.set("kips", r.kips);
                    else
                        fields.set("error", r.error);
                    logEvent(r.ok() ? LogLevel::Info : LogLevel::Warn,
                             "sweep_job_done", std::move(fields));
                }
                const unsigned d = ++done;
                if (progress)
                    progressLine(results[i], d, n);
            }));
        }
        // get() rethrows runner bugs; job failures live in results.
        for (auto &f : pending)
            f.get();
    }
    return results;
}

json::Value
SweepRunner::aggregateReport(const SweepManifest &manifest,
                             const std::vector<JobResult> &results,
                             bool include_timing)
{
    tdc_assert(manifest.jobs.size() == results.size(),
               "result count does not match manifest");
    auto doc = json::Value::object();
    doc.set("schema", sweepReportSchema);
    doc.set("name", manifest.name);
    auto jobs = json::Value::array();
    for (const auto &r : results) {
        auto entry = json::Value::object();
        entry.set("label", r.label);
        entry.set("status", statusName(r.status));
        entry.set("attempts", std::uint64_t{r.attempts});
        if (r.ok())
            entry.set("report", r.report);
        else
            entry.set("error", r.error);
        if (include_timing) {
            auto timing = json::Value::object();
            timing.set("wall_seconds", r.wallSeconds);
            timing.set("kips", r.kips);
            entry.set("timing", std::move(timing));
        }
        jobs.push(std::move(entry));
    }
    doc.set("jobs", std::move(jobs));
    return doc;
}

} // namespace runner
} // namespace tdc
