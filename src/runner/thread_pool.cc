#include "runner/thread_pool.hh"

namespace tdc {
namespace runner {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultConcurrency();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

unsigned
ThreadPool::defaultConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void
ThreadPool::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tdc_assert(!stopping_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task captures exceptions into the future; anything
        // escaping here is a runner bug.
        task();
    }
}

} // namespace runner
} // namespace tdc
