/**
 * @file
 * A fixed-size worker thread pool.
 *
 * Simulation design points are embarrassingly parallel -- each System
 * owns all of its state -- so the pool is deliberately simple: a
 * locked FIFO of type-erased tasks drained by N workers. submit()
 * returns a std::future so callers observe completion, returned
 * values and captured exceptions per task; the destructor drains the
 * queue and joins, so a ThreadPool going out of scope is a barrier.
 */

#ifndef TDC_RUNNER_THREAD_POOL_HH
#define TDC_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace tdc {
namespace runner {

class ThreadPool
{
  public:
    /** threads == 0 picks defaultConcurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueues fn and returns a future for its result. An exception
     * escaping fn is captured and rethrown from future::get(); it
     * never takes down a worker.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        post([task] { (*task)(); });
        return result;
    }

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** hardware_concurrency(), but never 0. */
    static unsigned defaultConcurrency();

  private:
    void post(std::function<void()> fn);
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace runner
} // namespace tdc

#endif // TDC_RUNNER_THREAD_POOL_HH
