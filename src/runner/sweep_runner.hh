/**
 * @file
 * Executes a SweepManifest's design points on a worker thread pool.
 *
 * Each job builds, runs and tears down its own System, so jobs share
 * nothing but the logging sink (which is mutex-serialized and prefixes
 * each worker's job label). The contract the golden gate depends on:
 * results come back indexed in manifest order, and aggregateReport()
 * contains no wall-clock data, so aggregated output is byte-identical
 * at any worker count.
 *
 * Failure handling per job:
 *  - an exception (including fatal(), which workers capture as
 *    FatalError) marks the job Failed and triggers one automatic
 *    retry; the second failure is reported with its message;
 *  - a job whose wall time exceeds the manifest's timeout_seconds is
 *    reported TimedOut (checked after the run completes -- a System
 *    cannot be interrupted mid-simulation) and is not retried;
 *  - panic() / tdc_assert still abort the process: an internal
 *    invariant violation is never a per-job condition.
 */

#ifndef TDC_RUNNER_SWEEP_RUNNER_HH
#define TDC_RUNNER_SWEEP_RUNNER_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/json.hh"
#include "runner/sweep.hh"
#include "sys/system.hh"

namespace tdc {
namespace runner {

struct JobResult
{
    enum class Status { Ok, Failed, TimedOut };

    Status status = Status::Failed;
    std::string label;
    std::string error;      //!< last failure message (Failed/TimedOut)
    unsigned attempts = 0;
    double wallSeconds = 0.0; //!< last attempt's simulation wall time
    double kips = 0.0;        //!< host throughput: insts / wall / 1000

    RunResult result;       //!< valid when status == Ok
    json::Value report;     //!< tdc-run-report-v1 (meta + result)

    bool ok() const { return status == Status::Ok; }
};

/** Stable lower-case token for reports ("ok", "failed", "timeout"). */
std::string_view statusName(JobResult::Status s);

struct SweepOptions
{
    /** Worker threads; 0 means min(#jobs, hardware_concurrency). */
    unsigned jobs = 0;

    /** Per-completion progress lines on stderr. */
    bool progress = true;

    /** One automatic retry after a failed (not timed-out) attempt. */
    bool retryOnFailure = true;

    /**
     * Timing repetitions per job (median-of-N wall clock / KIPS).
     * Results are deterministic, so only the first repetition's
     * simulation output is kept; extra repetitions re-run the same
     * design point purely to stabilize the host-timing estimate.
     */
    unsigned repeat = 1;

    /**
     * "Warm once, restore many": jobs whose warm-relevant
     * configuration hashes (warmFingerprint) match are grouped; one
     * System per group runs the warmup and is checkpointed in memory,
     * and every job in the group measures from the restored state.
     * Aggregated output is byte-identical to the non-shared path at
     * any worker count; a group whose warm run fails falls back to
     * full per-job runs.
     */
    bool shareWarmups = false;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opt = {}) : opt_(opt) {}

    /**
     * Runs every job and returns results in manifest order. Blocks
     * until all jobs finish; a failed point is reported in its slot
     * rather than aborting the sweep.
     */
    std::vector<JobResult> run(const SweepManifest &manifest) const;

    /**
     * Aggregates into a tdc-sweep-report-v1 document: one entry per
     * job, manifest order. By default no timing is included, so the
     * document is byte-deterministic at any -j; include_timing adds a
     * per-job "timing" block (wall seconds, KIPS) for profiling runs
     * that accept host-dependent output.
     */
    static json::Value
    aggregateReport(const SweepManifest &manifest,
                    const std::vector<JobResult> &results,
                    bool include_timing = false);

    /** TDC_JOBS from the environment, or def when unset/invalid. */
    static unsigned envJobs(unsigned def = 0);

    /** The worker count run() would use for n jobs. */
    unsigned effectiveWorkers(std::size_t n) const;

  private:
    SweepOptions opt_;
};

/** Schema tag of aggregated sweep reports. */
inline constexpr const char *sweepReportSchema = "tdc-sweep-report-v1";

} // namespace runner
} // namespace tdc

#endif // TDC_RUNNER_SWEEP_RUNNER_HH
