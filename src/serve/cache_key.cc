#include "serve/cache_key.hh"

#include <cstdio>
#include <mutex>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "common/logging.hh"

namespace tdc {
namespace serve {

std::uint64_t
jobConfigHash(const runner::JobSpec &spec)
{
    // The compact dump of the job's canonical JSON form is a stable,
    // order-fixed string over every field (JobSpec::toJson emits
    // members in declaration order and raw overrides sorted by key).
    // A schema-version salt invalidates every key if the spec encoding
    // ever changes shape.
    std::string s = "tdc-job-config-v1|";
    s += spec.toJson().dump(-1);
    return ckpt::fnv1a(s);
}

std::uint64_t
binaryHash()
{
    static std::once_flag once;
    static std::uint64_t hash = 0;
    std::call_once(once, [] {
        std::FILE *f = std::fopen("/proc/self/exe", "rb");
        if (f == nullptr) {
            warn("cannot read /proc/self/exe; binary-keyed caches "
                 "share one generation");
            return;
        }
        std::uint64_t h = 14695981039346656037ULL;
        std::vector<unsigned char> buf(1 << 20);
        std::size_t got;
        while ((got = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
            for (std::size_t i = 0; i < got; ++i) {
                h ^= buf[i];
                h *= 1099511628211ULL;
            }
        }
        std::fclose(f);
        hash = h;
    });
    return hash;
}

} // namespace serve
} // namespace tdc
