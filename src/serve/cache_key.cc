#include "serve/cache_key.hh"

#include <cstdio>
#include <mutex>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "trace/mtrace.hh"
#include "trace/workloads.hh"

namespace tdc {
namespace serve {

std::uint64_t
jobConfigHash(const runner::JobSpec &spec)
{
    // The compact dump of the job's canonical JSON form is a stable,
    // order-fixed string over every field (JobSpec::toJson emits
    // members in declaration order and raw overrides sorted by key).
    // A schema-version salt invalidates every key if the spec encoding
    // ever changes shape.
    std::string s = "tdc-job-config-v1|";
    s += spec.toJson().dump(-1);
    // A trace workload names a file; the report depends on the file's
    // *content*. Fold the content hash in so overwriting a trace at
    // the same path cannot satisfy a lookup with a stale report.
    for (const std::string &w : spec.workloads) {
        if (isTraceWorkload(w))
            s += format("|trace:{}={}", w,
                        ckpt::hex16(mtrace::traceContentHash(
                            tracePathOf(w))));
    }
    return ckpt::fnv1a(s);
}

std::uint64_t
binaryHash()
{
    static std::once_flag once;
    static std::uint64_t hash = 0;
    std::call_once(once, [] {
        std::FILE *f = std::fopen("/proc/self/exe", "rb");
        if (f == nullptr) {
            warn("cannot read /proc/self/exe; binary-keyed caches "
                 "share one generation");
            return;
        }
        std::uint64_t h = 14695981039346656037ULL;
        std::vector<unsigned char> buf(1 << 20);
        std::size_t got;
        while ((got = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
            for (std::size_t i = 0; i < got; ++i) {
                h ^= buf[i];
                h *= 1099511628211ULL;
            }
        }
        std::fclose(f);
        hash = h;
    });
    return hash;
}

} // namespace serve
} // namespace tdc
