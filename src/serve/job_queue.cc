#include "serve/job_queue.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "ckpt/checkpoint.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "serve/cache_key.hh"

namespace fs = std::filesystem;

namespace tdc {
namespace serve {

namespace {

constexpr const char *states[] = {"pending", "claimed", "done",
                                  "failed"};

fs::path
stateDir(const std::string &dir, const std::string &state)
{
    return fs::path(dir) / state;
}

/**
 * Publishes a document atomically: write + flush into tmp/, then a
 * same-filesystem rename to the destination. Readers (and a daemon
 * resuming after a crash) never observe a half-written job file.
 */
void
atomicPublish(const std::string &dir, const std::string &file,
              const json::Value &doc, const std::string &state)
{
    const fs::path tmp = fs::path(dir) / "tmp" / file;
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            fatal("job queue: cannot write '{}'", tmp.string());
        doc.write(out);
        out << "\n";
        out.flush();
        if (!out)
            fatal("job queue: short write to '{}'", tmp.string());
    }
    const fs::path dest = stateDir(dir, state) / file;
    std::error_code ec;
    fs::rename(tmp, dest, ec);
    if (ec)
        fatal("job queue: cannot publish '{}' to {}: {}", file, state,
              ec.message());
}

/** Sorted file names (not paths) in one state directory. */
std::vector<std::string>
listState(const std::string &dir, const std::string &state)
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(stateDir(dir, state), ec)) {
        if (entry.is_regular_file())
            names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace

JobQueue::JobQueue(const std::string &root)
    : dir_((fs::path(root) / "queue").string())
{
    std::error_code ec;
    for (const char *state : states)
        fs::create_directories(stateDir(dir_, state), ec);
    fs::create_directories(fs::path(dir_) / "tmp", ec);
    if (ec)
        fatal("job queue: cannot create spool under '{}': {}", dir_,
              ec.message());
}

std::string
JobQueue::jobId(const runner::JobSpec &spec)
{
    return format("{}-{}", runner::sanitizeJobLabel(spec.label),
                  ckpt::hex16(jobConfigHash(spec)));
}

unsigned
JobQueue::enqueue(const runner::SweepManifest &m)
{
    m.validate();
    unsigned spooled = 0;
    for (const auto &spec : m.jobs) {
        const std::string id = jobId(spec);
        const std::string file = id + ".json";
        std::error_code ec;
        if (fs::exists(stateDir(dir_, "pending") / file, ec)
            || fs::exists(stateDir(dir_, "claimed") / file, ec))
            continue; // already in flight
        // A finished record is superseded: this enqueue asks for the
        // cell to be produced again (cheaply, via the result cache).
        fs::remove(stateDir(dir_, "done") / file, ec);
        fs::remove(stateDir(dir_, "failed") / file, ec);

        auto doc = json::Value::object();
        doc.set("schema", jobQueueSchema);
        doc.set("id", id);
        doc.set("label", spec.label);
        doc.set("config_hash",
                ckpt::hex16(jobConfigHash(spec)));
        doc.set("binary_hash", ckpt::hex16(binaryHash()));
        doc.set("manifest", m.name);
        doc.set("timeout_seconds", m.timeoutSeconds);
        doc.set("spec", spec.toJson());
        atomicPublish(dir_, file, doc, "pending");
        ++spooled;
    }
    return spooled;
}

unsigned
JobQueue::recover()
{
    unsigned requeued = 0;
    for (const std::string &file : listState(dir_, "claimed")) {
        std::error_code ec;
        const bool finished =
            fs::exists(stateDir(dir_, "done") / file, ec)
            || fs::exists(stateDir(dir_, "failed") / file, ec);
        if (finished) {
            // Crash between publishing the outcome and unlinking the
            // claim: the work is done, drop the stale claim.
            fs::remove(stateDir(dir_, "claimed") / file, ec);
            continue;
        }
        fs::rename(stateDir(dir_, "claimed") / file,
                   stateDir(dir_, "pending") / file, ec);
        if (ec) {
            warn("job queue: cannot requeue '{}': {}", file,
                 ec.message());
            continue;
        }
        ++requeued;
    }
    return requeued;
}

std::optional<QueueJob>
JobQueue::claim()
{
    for (;;) {
        const auto names = listState(dir_, "pending");
        if (names.empty())
            return std::nullopt;
        const std::string &file = names.front();
        const fs::path claimed = stateDir(dir_, "claimed") / file;
        std::error_code ec;
        fs::rename(stateDir(dir_, "pending") / file, claimed, ec);
        if (ec)
            continue; // raced with another claimer; rescan

        std::string err;
        const auto doc = json::tryReadFile(claimed.string(), &err);
        QueueJob job;
        job.id = file.substr(0, file.size() - 5); // strip ".json"
        if (doc && doc->isObject()) {
            try {
                const json::Value *spec = doc->find("spec");
                if (spec == nullptr)
                    throw runner::ManifestError(
                        "job file has no 'spec'");
                // Reuse the manifest parser for one explicit job.
                auto wrapper = json::Value::object();
                wrapper.set("schema", runner::sweepManifestSchema);
                auto jobs = json::Value::array();
                jobs.push(*spec);
                wrapper.set("jobs", std::move(jobs));
                auto mini = runner::SweepManifest::fromJson(wrapper);
                job.spec = mini.jobs.at(0);
                if (const json::Value *t =
                        doc->find("timeout_seconds"))
                    job.timeoutSeconds = t->asDouble();
                if (const json::Value *mn = doc->find("manifest");
                    mn != nullptr && mn->isString())
                    job.manifestName = mn->asString();
                job.configHash = jobConfigHash(job.spec);
                return job;
            } catch (const std::exception &e) {
                err = e.what();
            }
        }
        // Unparseable job file: fail it (with the reason recorded)
        // and keep draining the rest of the spool.
        warn("job queue: corrupt job file '{}': {}", file, err);
        auto outcome = json::Value::object();
        outcome.set("status", "failed");
        outcome.set("attempts", 0);
        outcome.set("error", format("corrupt job file: {}", err));
        fail(job, outcome);
    }
}

void
JobQueue::finish(const QueueJob &job, const json::Value &outcome,
                 const std::string &state)
{
    const std::string file = job.id + ".json";
    const fs::path claimed = stateDir(dir_, "claimed") / file;

    // Re-publish the claimed document with the outcome embedded; a
    // missing/corrupt claim (failed parse path) degrades to a stub.
    json::Value doc;
    if (auto read = json::tryReadFile(claimed.string());
        read && read->isObject()) {
        doc = std::move(*read);
    } else {
        doc = json::Value::object();
        doc.set("schema", jobQueueSchema);
        doc.set("id", job.id);
        doc.set("label", job.spec.label);
    }
    doc.set("outcome", outcome);
    atomicPublish(dir_, file, doc, state);
    std::error_code ec;
    fs::remove(claimed, ec);
}

void
JobQueue::complete(const QueueJob &job, const json::Value &outcome)
{
    finish(job, outcome, "done");
}

void
JobQueue::fail(const QueueJob &job, const json::Value &outcome)
{
    finish(job, outcome, "failed");
}

std::optional<json::Value>
JobQueue::outcomeOf(const std::string &id) const
{
    for (const char *state : {"done", "failed"}) {
        const fs::path p = stateDir(dir_, state) / (id + ".json");
        std::error_code ec;
        if (!fs::exists(p, ec))
            continue;
        if (auto doc = json::tryReadFile(p.string());
            doc && doc->isObject()) {
            if (const json::Value *outcome = doc->find("outcome"))
                return *outcome;
        }
    }
    return std::nullopt;
}

std::size_t
JobQueue::pendingCount() const
{
    return listState(dir_, "pending").size();
}

std::size_t
JobQueue::claimedCount() const
{
    return listState(dir_, "claimed").size();
}

std::size_t
JobQueue::doneCount() const
{
    return listState(dir_, "done").size();
}

std::size_t
JobQueue::failedCount() const
{
    return listState(dir_, "failed").size();
}

json::Value
JobQueue::statusJson() const
{
    auto v = json::Value::object();
    v.set("schema", jobQueueSchema);
    v.set("dir", dir_);
    v.set("pending", std::uint64_t{pendingCount()});
    v.set("claimed", std::uint64_t{claimedCount()});
    v.set("done", std::uint64_t{doneCount()});
    v.set("failed", std::uint64_t{failedCount()});
    return v;
}

} // namespace serve
} // namespace tdc
