#include "serve/job_queue.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "ckpt/checkpoint.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "metrics/registry.hh"
#include "serve/cache_key.hh"

namespace fs = std::filesystem;

namespace tdc {
namespace serve {

namespace {

constexpr const char *states[] = {"pending", "claimed", "done",
                                  "failed"};

/** Queue metrics (DESIGN.md 11 catalog). */
struct QueueMetrics
{
    metrics::Counter &enqueued;
    metrics::Counter &recovered;
    metrics::Counter &corrupt;
    metrics::Counter &gcPasses;
    metrics::Counter &gcRemoved;
    metrics::Gauge &pending;
    metrics::Gauge &claimed;
    metrics::Gauge &done;
    metrics::Gauge &failed;
};

QueueMetrics &
queueMetrics()
{
    auto &r = metrics::registry();
    static QueueMetrics m{
        r.counter("tdc_queue_enqueued_total",
                  "Job files newly spooled into pending/"),
        r.counter("tdc_queue_recovered_total",
                  "Orphaned claims requeued by recover()"),
        r.counter("tdc_queue_corrupt_jobs_total",
                  "Unparseable job files moved to failed/"),
        r.counter("tdc_gc_passes_total",
                  "Retention sweeps over done/ and failed/"),
        r.counter("tdc_gc_removed_total",
                  "Spool records removed by retention sweeps"),
        r.gauge("tdc_queue_pending", "Jobs waiting in pending/"),
        r.gauge("tdc_queue_claimed", "Jobs owned by a running drain"),
        r.gauge("tdc_queue_done", "Completed job records in done/"),
        r.gauge("tdc_queue_failed",
                "Failed or timed-out job records in failed/"),
    };
    return m;
}

fs::path
stateDir(const std::string &dir, const std::string &state)
{
    return fs::path(dir) / state;
}

/**
 * Publishes a document atomically: write + flush into tmp/, then a
 * same-filesystem rename to the destination. Readers (and a daemon
 * resuming after a crash) never observe a half-written job file.
 */
void
atomicPublish(const std::string &dir, const std::string &file,
              const json::Value &doc, const std::string &state)
{
    const fs::path tmp = fs::path(dir) / "tmp" / file;
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            fatal("job queue: cannot write '{}'", tmp.string());
        doc.write(out);
        out << "\n";
        out.flush();
        if (!out)
            fatal("job queue: short write to '{}'", tmp.string());
    }
    const fs::path dest = stateDir(dir, state) / file;
    std::error_code ec;
    fs::rename(tmp, dest, ec);
    if (ec)
        fatal("job queue: cannot publish '{}' to {}: {}", file, state,
              ec.message());
}

/** Sorted file names (not paths) in one state directory. */
std::vector<std::string>
listState(const std::string &dir, const std::string &state)
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(stateDir(dir, state), ec)) {
        if (entry.is_regular_file())
            names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace

JobQueue::JobQueue(const std::string &root)
    : dir_((fs::path(root) / "queue").string())
{
    std::error_code ec;
    for (const char *state : states)
        fs::create_directories(stateDir(dir_, state), ec);
    fs::create_directories(fs::path(dir_) / "tmp", ec);
    if (ec)
        fatal("job queue: cannot create spool under '{}': {}", dir_,
              ec.message());
}

std::string
JobQueue::jobId(const runner::JobSpec &spec)
{
    return format("{}-{}", runner::sanitizeJobLabel(spec.label),
                  ckpt::hex16(jobConfigHash(spec)));
}

unsigned
JobQueue::enqueue(const runner::SweepManifest &m)
{
    m.validate();
    unsigned spooled = 0;
    for (const auto &spec : m.jobs) {
        const std::string id = jobId(spec);
        const std::string file = id + ".json";
        std::error_code ec;
        if (fs::exists(stateDir(dir_, "pending") / file, ec)
            || fs::exists(stateDir(dir_, "claimed") / file, ec))
            continue; // already in flight
        // A finished record is superseded: this enqueue asks for the
        // cell to be produced again (cheaply, via the result cache).
        fs::remove(stateDir(dir_, "done") / file, ec);
        fs::remove(stateDir(dir_, "failed") / file, ec);

        auto doc = json::Value::object();
        doc.set("schema", jobQueueSchema);
        doc.set("id", id);
        doc.set("label", spec.label);
        doc.set("config_hash",
                ckpt::hex16(jobConfigHash(spec)));
        doc.set("binary_hash", ckpt::hex16(binaryHash()));
        doc.set("manifest", m.name);
        doc.set("timeout_seconds", m.timeoutSeconds);
        doc.set("spec", spec.toJson());
        atomicPublish(dir_, file, doc, "pending");
        ++spooled;
    }
    queueMetrics().enqueued.inc(spooled);
    return spooled;
}

unsigned
JobQueue::recover()
{
    unsigned requeued = 0;
    for (const std::string &file : listState(dir_, "claimed")) {
        std::error_code ec;
        const bool finished =
            fs::exists(stateDir(dir_, "done") / file, ec)
            || fs::exists(stateDir(dir_, "failed") / file, ec);
        if (finished) {
            // Crash between publishing the outcome and unlinking the
            // claim: the work is done, drop the stale claim.
            fs::remove(stateDir(dir_, "claimed") / file, ec);
            continue;
        }
        fs::rename(stateDir(dir_, "claimed") / file,
                   stateDir(dir_, "pending") / file, ec);
        if (ec) {
            warn("job queue: cannot requeue '{}': {}", file,
                 ec.message());
            continue;
        }
        ++requeued;
    }
    queueMetrics().recovered.inc(requeued);
    return requeued;
}

std::optional<QueueJob>
JobQueue::claim()
{
    for (;;) {
        const auto names = listState(dir_, "pending");
        if (names.empty())
            return std::nullopt;
        const std::string &file = names.front();
        const fs::path claimed = stateDir(dir_, "claimed") / file;
        std::error_code ec;
        fs::rename(stateDir(dir_, "pending") / file, claimed, ec);
        if (ec)
            continue; // raced with another claimer; rescan

        std::string err;
        const auto doc = json::tryReadFile(claimed.string(), &err);
        QueueJob job;
        job.id = file.substr(0, file.size() - 5); // strip ".json"
        if (doc && doc->isObject()) {
            try {
                const json::Value *spec = doc->find("spec");
                if (spec == nullptr)
                    throw runner::ManifestError(
                        "job file has no 'spec'");
                // Reuse the manifest parser for one explicit job.
                auto wrapper = json::Value::object();
                wrapper.set("schema", runner::sweepManifestSchema);
                auto jobs = json::Value::array();
                jobs.push(*spec);
                wrapper.set("jobs", std::move(jobs));
                auto mini = runner::SweepManifest::fromJson(wrapper);
                job.spec = mini.jobs.at(0);
                if (const json::Value *t =
                        doc->find("timeout_seconds"))
                    job.timeoutSeconds = t->asDouble();
                if (const json::Value *mn = doc->find("manifest");
                    mn != nullptr && mn->isString())
                    job.manifestName = mn->asString();
                job.configHash = jobConfigHash(job.spec);
                return job;
            } catch (const std::exception &e) {
                err = e.what();
            }
        }
        // Unparseable job file: fail it (with the reason recorded)
        // and keep draining the rest of the spool.
        warn("job queue: corrupt job file '{}': {}", file, err);
        queueMetrics().corrupt.inc();
        auto outcome = json::Value::object();
        outcome.set("status", "failed");
        outcome.set("attempts", 0);
        outcome.set("error", format("corrupt job file: {}", err));
        fail(job, outcome);
    }
}

void
JobQueue::finish(const QueueJob &job, const json::Value &outcome,
                 const std::string &state)
{
    const std::string file = job.id + ".json";
    const fs::path claimed = stateDir(dir_, "claimed") / file;

    // Re-publish the claimed document with the outcome embedded; a
    // missing/corrupt claim (failed parse path) degrades to a stub.
    json::Value doc;
    if (auto read = json::tryReadFile(claimed.string());
        read && read->isObject()) {
        doc = std::move(*read);
    } else {
        doc = json::Value::object();
        doc.set("schema", jobQueueSchema);
        doc.set("id", job.id);
        doc.set("label", job.spec.label);
    }
    doc.set("outcome", outcome);
    atomicPublish(dir_, file, doc, state);
    std::error_code ec;
    fs::remove(claimed, ec);
}

void
JobQueue::complete(const QueueJob &job, const json::Value &outcome)
{
    finish(job, outcome, "done");
}

void
JobQueue::fail(const QueueJob &job, const json::Value &outcome)
{
    finish(job, outcome, "failed");
}

std::optional<json::Value>
JobQueue::outcomeOf(const std::string &id) const
{
    for (const char *state : {"done", "failed"}) {
        const fs::path p = stateDir(dir_, state) / (id + ".json");
        std::error_code ec;
        if (!fs::exists(p, ec))
            continue;
        if (auto doc = json::tryReadFile(p.string());
            doc && doc->isObject()) {
            if (const json::Value *outcome = doc->find("outcome"))
                return *outcome;
        }
    }
    return std::nullopt;
}

unsigned
JobQueue::gc(std::size_t keep)
{
    struct Record
    {
        fs::path path;
        fs::file_time_type mtime;
        std::string name;
    };
    unsigned removed = 0;
    for (const char *state : {"done", "failed"}) {
        std::vector<Record> records;
        std::error_code ec;
        for (const auto &entry :
             fs::directory_iterator(stateDir(dir_, state), ec)) {
            if (!entry.is_regular_file())
                continue;
            records.push_back(Record{entry.path(),
                                     entry.last_write_time(),
                                     entry.path().filename().string()});
        }
        // Newest first; a deterministic name tie-break so same-mtime
        // records (coarse filesystems) prune reproducibly.
        std::sort(records.begin(), records.end(),
                  [](const Record &a, const Record &b) {
                      return a.mtime != b.mtime ? a.mtime > b.mtime
                                                : a.name < b.name;
                  });
        for (std::size_t i = keep; i < records.size(); ++i) {
            fs::remove(records[i].path, ec);
            if (ec) {
                warn("job queue: gc cannot remove '{}': {}",
                     records[i].name, ec.message());
                continue;
            }
            ++removed;
        }
    }
    queueMetrics().gcPasses.inc();
    queueMetrics().gcRemoved.inc(removed);
    return removed;
}

std::size_t
JobQueue::pendingCount() const
{
    return listState(dir_, "pending").size();
}

std::size_t
JobQueue::claimedCount() const
{
    return listState(dir_, "claimed").size();
}

std::size_t
JobQueue::doneCount() const
{
    return listState(dir_, "done").size();
}

std::size_t
JobQueue::failedCount() const
{
    return listState(dir_, "failed").size();
}

json::Value
JobQueue::statusJson() const
{
    auto v = json::Value::object();
    v.set("schema", jobQueueSchema);
    v.set("dir", dir_);
    v.set("pending", std::uint64_t{pendingCount()});
    v.set("claimed", std::uint64_t{claimedCount()});
    v.set("done", std::uint64_t{doneCount()});
    v.set("failed", std::uint64_t{failedCount()});
    return v;
}

void
JobQueue::updateGauges() const
{
    QueueMetrics &m = queueMetrics();
    m.pending.set(static_cast<std::int64_t>(pendingCount()));
    m.claimed.set(static_cast<std::int64_t>(claimedCount()));
    m.done.set(static_cast<std::int64_t>(doneCount()));
    m.failed.set(static_cast<std::int64_t>(failedCount()));
}

} // namespace serve
} // namespace tdc
