/**
 * @file
 * Persistent on-disk job queue for the resident sweep service
 * (`tdc-jobqueue-v1`).
 *
 * The queue is a spool directory with one JSON job file per design
 * point and a four-state lifecycle encoded purely in the file's
 * directory:
 *
 *     <queue>/pending/<id>.json    enqueued, waiting for a worker
 *     <queue>/claimed/<id>.json    owned by a running drain
 *     <queue>/done/<id>.json       completed (outcome embedded)
 *     <queue>/failed/<id>.json     failed or timed out (outcome
 *                                  embedded)
 *     <queue>/tmp/                 staging for atomic publication
 *
 * Every transition is a single atomic rename on one filesystem:
 * enqueue writes to tmp/ and renames into pending/; claim renames
 * pending -> claimed; complete/fail write the outcome file to tmp/,
 * rename it into done|failed/, then unlink the claimed entry. A crash
 * at any point leaves the spool recoverable: recover() moves orphaned
 * claimed/ entries back to pending/ (or drops them when their outcome
 * file already exists -- the crash happened between publishing the
 * outcome and unlinking the claim), so a killed daemon resumes
 * cleanly and never loses or duplicates a job.
 *
 * Job ids are deterministic -- "<sanitized-label>-<config-hash>" --
 * so re-enqueueing a manifest is idempotent for jobs already pending
 * or claimed, and re-enqueueing a finished job supersedes its old
 * outcome and runs it again (the result cache, not the queue, is what
 * makes re-runs cheap).
 */

#ifndef TDC_SERVE_JOB_QUEUE_HH
#define TDC_SERVE_JOB_QUEUE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "runner/sweep.hh"

namespace tdc {
namespace serve {

/** Schema tag stamped into every spooled job file. */
inline constexpr const char *jobQueueSchema = "tdc-jobqueue-v1";

/** One claimed unit of work. */
struct QueueJob
{
    std::string id;
    runner::JobSpec spec;
    std::string manifestName;
    double timeoutSeconds = 0.0;
    std::uint64_t configHash = 0;
};

class JobQueue
{
  public:
    /** Opens (creating if needed) the spool under <root>/queue. */
    explicit JobQueue(const std::string &root);

    /** The deterministic spool id of a design point. */
    static std::string jobId(const runner::JobSpec &spec);

    /**
     * Spools one job file per manifest job. Jobs already pending or
     * claimed are left untouched; done/failed records with the same
     * id are superseded (the job runs again). Returns the number of
     * files newly placed in pending/.
     */
    unsigned enqueue(const runner::SweepManifest &m);

    /**
     * Crash recovery: every orphaned claimed/ entry goes back to
     * pending/, except entries whose done/failed outcome already
     * exists (those are dropped -- the previous daemon died between
     * publishing the outcome and unlinking the claim). Returns the
     * number of jobs requeued.
     */
    unsigned recover();

    /**
     * Claims the lexicographically first pending job (pending ->
     * claimed) and parses it; std::nullopt when the spool is empty.
     * A job file that fails to parse is moved to failed/ with the
     * parse error as its outcome, and claiming continues.
     */
    std::optional<QueueJob> claim();

    /** claimed -> done, embedding `outcome` under "outcome". */
    void complete(const QueueJob &job, const json::Value &outcome);

    /** claimed -> failed, embedding `outcome` under "outcome". */
    void fail(const QueueJob &job, const json::Value &outcome);

    /** The stored outcome of a finished job ("outcome" member of the
     *  done/failed record), or nullopt when the job has neither. */
    std::optional<json::Value> outcomeOf(const std::string &id) const;

    /**
     * Retention sweep: keeps the `keep` most recent records (by
     * mtime, newest first, ties by name) in each of done/ and
     * failed/ and removes the rest. Returns the number of spool
     * files removed. Bumps the tdc_gc_* metrics.
     */
    unsigned gc(std::size_t keep);

    std::size_t pendingCount() const;
    std::size_t claimedCount() const;
    std::size_t doneCount() const;
    std::size_t failedCount() const;

    /** {pending, claimed, done, failed} counts for --status. */
    json::Value statusJson() const;

    /** Refreshes the tdc_queue_* depth gauges from the spool. */
    void updateGauges() const;

    const std::string &dir() const { return dir_; }

  private:
    void finish(const QueueJob &job, const json::Value &outcome,
                const std::string &state);

    std::string dir_;
};

} // namespace serve
} // namespace tdc

#endif // TDC_SERVE_JOB_QUEUE_HH
