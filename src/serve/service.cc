#include "serve/service.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>

#include "common/event_log.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "metrics/registry.hh"
#include "runner/sweep_runner.hh"
#include "runner/thread_pool.hh"
#include "serve/cache_key.hh"
#include "sys/report.hh"
#include "sys/system.hh"

namespace fs = std::filesystem;

namespace tdc {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Serializes the stdout summary line against stderr progress. */
std::mutex &
progressMutex()
{
    static std::mutex m;
    return m;
}

/**
 * Per-completion progress, routed through the leveled sink so every
 * line carries a timestamp and severity and mirrors into the JSONL
 * event log when one is attached. `enabled` is the --progress knob;
 * TDC_LOG_LEVEL / log.level gates it a second time inside inform().
 */
void
progressLine(const std::string &line, bool enabled)
{
    if (!enabled)
        return;
    inform("{}", line);
}

/** Drain-loop metrics (DESIGN.md 11 catalog). */
struct DrainMetrics
{
    metrics::Counter &passes;
    metrics::Counter &jobsOk;
    metrics::Counter &jobsFailed;
    metrics::Counter &jobsTimeout;
    metrics::Counter &retries;
    metrics::Counter &warmupInsts;
    metrics::Counter &measureInsts;
    metrics::Histogram &jobWall;
    metrics::Histogram &jobKips;
};

DrainMetrics &
drainMetrics()
{
    auto &r = metrics::registry();
    static DrainMetrics m{
        r.counter("tdc_drain_passes_total",
                  "Drain passes over the job spool"),
        r.counter("tdc_jobs_ok_total",
                  "Jobs completed ok (replayed or simulated)"),
        r.counter("tdc_jobs_failed_total", "Jobs that failed"),
        r.counter("tdc_jobs_timeout_total",
                  "Jobs that exceeded their wall-time budget"),
        r.counter("tdc_job_retries_total",
                  "Extra attempts beyond each job's first"),
        r.counter("tdc_warmup_insts_simulated_total",
                  "Warmup instructions actually simulated"),
        r.counter("tdc_measure_insts_simulated_total",
                  "Measurement instructions actually simulated"),
        r.histogram("tdc_job_wall_seconds",
                    "Per-job wall time of simulated (non-replayed) "
                    "jobs",
                    {0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                     10.0, 30.0, 60.0, 120.0, 300.0}),
        r.histogram("tdc_job_kips",
                    "Per-job simulation throughput (kilo-insts/s)",
                    {50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0,
                     6400.0, 12800.0, 25600.0}),
    };
    return m;
}

/**
 * One served design point. Mirrors SweepRunner's retry contract
 * exactly -- attempt 1 restores the warm checkpoint and runs only the
 * measurement leg, a failed attempt retries with a full warmup +
 * measure run, a timeout is post-hoc and never retried -- so the
 * resulting tdc-run-report-v1 is byte-identical to what a direct
 * tdc_sweep run of the same job produces. Additionally accounts the
 * instructions actually simulated into `warm_insts` / `meas_insts`.
 */
runner::JobResult
runServed(const runner::JobSpec &job, double timeout_s,
          const ckpt::Checkpoint *warm, std::uint64_t &warm_insts,
          std::uint64_t &meas_insts)
{
    runner::JobResult r;
    r.label = job.label;

    ScopedLogLabel log_label(job.label);
    for (unsigned attempt = 1; attempt <= 2; ++attempt) {
        r.attempts = attempt;
        const auto t0 = Clock::now();
        try {
            ScopedFatalCapture capture;
            const SystemConfig cfg = job.toSystemConfig();
            System sys(cfg);
            RunResult rr;
            std::uint64_t warmed = 0;
            if (warm != nullptr && attempt == 1) {
                sys.restoreCheckpoint(*warm);
                rr = sys.measure();
            } else {
                warmed = std::uint64_t{sys.activeCores()}
                         * cfg.warmupInsts;
                rr = sys.run();
            }
            r.wallSeconds = secondsSince(t0);
            if (timeout_s > 0.0 && r.wallSeconds > timeout_s) {
                r.status = runner::JobResult::Status::TimedOut;
                r.error = format(
                    "wall time {:.2f}s exceeded timeout {:.2f}s",
                    r.wallSeconds, timeout_s);
                warm_insts += warmed;
                meas_insts += rr.totalInsts;
                return r; // retrying would blow the budget again
            }
            r.result = std::move(rr);
            r.kips = r.wallSeconds > 0.0
                         ? static_cast<double>(r.result.totalInsts)
                               / r.wallSeconds / 1000.0
                         : 0.0;
            r.report = makeRunReport(cfg, r.result);
            r.status = runner::JobResult::Status::Ok;
            r.error.clear();
            warm_insts += warmed;
            meas_insts += r.result.totalInsts;
            return r;
        } catch (const std::exception &e) {
            r.wallSeconds = secondsSince(t0);
            r.status = runner::JobResult::Status::Failed;
            r.error = e.what();
        } catch (...) {
            r.wallSeconds = secondsSince(t0);
            r.status = runner::JobResult::Status::Failed;
            r.error = "unknown exception";
        }
    }
    return r;
}

unsigned
workerCount(unsigned requested, std::size_t n)
{
    unsigned workers = requested != 0
                           ? requested
                           : runner::ThreadPool::defaultConcurrency();
    if (n > 0 && workers > n)
        workers = static_cast<unsigned>(n);
    return std::max(workers, 1u);
}

} // namespace

ServeConfig
ServeConfig::fromConfig(const Config &cfg)
{
    ServeConfig sc;
    sc.root = cfg.getString("serve.root", sc.root);
    sc.jobs = static_cast<unsigned>(cfg.getU64("serve.jobs", sc.jobs));
    sc.useWarmCache = cfg.getBool("serve.warm_cache", sc.useWarmCache);
    sc.useResultCache =
        cfg.getBool("serve.result_cache", sc.useResultCache);
    sc.warmCacheBytes =
        cfg.getU64("serve.warm_cache_bytes", sc.warmCacheBytes);
    sc.pollMs =
        static_cast<unsigned>(cfg.getU64("serve.poll_ms", sc.pollMs));
    sc.metricsOut = cfg.getString("serve.metrics_out", sc.metricsOut);
    return sc;
}

json::Value
DrainStats::toJson() const
{
    auto v = json::Value::object();
    v.set("schema", "tdc-drain-v1");
    v.set("jobs", jobs);
    v.set("ok", ok);
    v.set("failed", failed);
    v.set("timed_out", timedOut);
    v.set("result_cache_hits", resultCacheHits);
    v.set("warm_cache_hits", warmCacheHits);
    v.set("warm_cache_misses", warmCacheMisses);
    v.set("warmup_insts_simulated", warmupInstsSimulated);
    v.set("measure_insts_simulated", measureInstsSimulated);
    v.set("wall_seconds", wallSeconds);
    return v;
}

std::string
DrainStats::summaryLine() const
{
    return format(
        "[served] drained {} job(s): {} ok, {} failed, {} timeout; "
        "result-cache hits {}, warm hits {}, warm misses {}; "
        "warmup insts simulated {}, measure insts simulated {}",
        jobs, ok, failed, timedOut, resultCacheHits, warmCacheHits,
        warmCacheMisses, warmupInstsSimulated, measureInstsSimulated);
}

SweepService::SweepService(const ServeConfig &cfg)
    : cfg_(cfg), queue_(cfg.root), warm_(cfg.root, cfg.warmCacheBytes),
      results_(cfg.root)
{
}

unsigned
SweepService::enqueue(const runner::SweepManifest &m)
{
    const unsigned spooled = queue_.enqueue(m);
    auto fields = json::Value::object();
    fields.set("manifest", m.name);
    fields.set("jobs", std::uint64_t{m.jobs.size()});
    fields.set("spooled", std::uint64_t{spooled});
    logEvent(LogLevel::Info, "enqueue", std::move(fields));
    publishMetrics();
    return spooled;
}

DrainStats
SweepService::drainOnce()
{
    const auto t0 = Clock::now();
    DrainStats st;
    std::mutex stats_mutex;

    queue_.recover();
    std::vector<QueueJob> claimed;
    while (auto job = queue_.claim())
        claimed.push_back(std::move(*job));
    st.jobs = claimed.size();

    drainMetrics().passes.inc();
    {
        auto fields = json::Value::object();
        fields.set("jobs", st.jobs);
        logEvent(LogLevel::Info, "drain_start", std::move(fields));
    }
    publishMetrics();

    // Phase 1: result-cache replay. A cell whose (config hash, binary
    // hash) already has a stored run report completes without
    // simulating anything.
    std::vector<QueueJob> toRun;
    for (auto &job : claimed) {
        if (cfg_.useResultCache) {
            if (auto hit = results_.lookup(job.configHash)) {
                ++st.resultCacheHits;
                ++st.ok;
                auto outcome = json::Value::object();
                outcome.set("status", "ok");
                outcome.set("attempts",
                            std::uint64_t{hit->attempts});
                outcome.set("cached", true);
                queue_.complete(job, outcome);
                drainMetrics().jobsOk.inc();
                auto fields = json::Value::object();
                fields.set("id", job.id);
                fields.set("label", job.spec.label);
                logEvent(LogLevel::Debug, "job_replayed",
                         std::move(fields));
                progressLine(format("[served] cached  {:<28}",
                                    job.spec.label),
                             cfg_.progress);
                continue;
            }
        }
        toRun.push_back(std::move(job));
    }

    // Phase 2: warm phase, grouped by warm fingerprint. Each group
    // restores its persisted checkpoint (zero warmup instructions) or
    // warms once, publishes the checkpoint to the cache and shares it
    // across the group, exactly like --warm-once within a pass.
    struct WarmGroup
    {
        std::uint64_t fp = 0;
        unsigned firstJob = 0;
        std::vector<unsigned> jobs;
        std::shared_ptr<const ckpt::Checkpoint> ckpt;
    };
    std::vector<WarmGroup> groups;
    {
        std::map<std::uint64_t, unsigned> index;
        for (unsigned i = 0;
             i < static_cast<unsigned>(toRun.size()); ++i) {
            const std::uint64_t fp =
                warmFingerprint(toRun[i].spec.toSystemConfig());
            auto [it, fresh] = index.emplace(
                fp, static_cast<unsigned>(groups.size()));
            if (fresh)
                groups.push_back(WarmGroup{fp, i, {}, nullptr});
            groups[it->second].jobs.push_back(i);
        }
    }
    if (!groups.empty()) {
        runner::ThreadPool pool(
            workerCount(cfg_.jobs, groups.size()));
        std::vector<std::future<void>> pending;
        pending.reserve(groups.size());
        for (auto &g : groups) {
            pending.push_back(pool.submit([&] {
                const runner::JobSpec &job = toRun[g.firstJob].spec;
                ScopedLogLabel log_label("warm " + job.label);
                if (cfg_.useWarmCache) {
                    if (auto hit = warm_.lookup(g.fp)) {
                        g.ckpt = std::move(hit);
                        {
                            std::lock_guard<std::mutex> lock(
                                stats_mutex);
                            ++st.warmCacheHits;
                        }
                        progressLine(
                            format("[served] warm hit {:<28} shared "
                                   "by {} job(s)",
                                   job.label, g.jobs.size()),
                            cfg_.progress);
                        return;
                    }
                }
                const auto wt0 = Clock::now();
                try {
                    ScopedFatalCapture capture;
                    System sys(runner::warmSystemConfig(job));
                    sys.warmup();
                    const std::uint64_t warmed =
                        std::uint64_t{sys.activeCores()}
                        * sys.config().warmupInsts;
                    auto ck =
                        std::make_shared<const ckpt::Checkpoint>(
                            sys.makeCheckpoint());
                    if (cfg_.useWarmCache)
                        warm_.store(*ck, g.fp);
                    g.ckpt = std::move(ck);
                    {
                        std::lock_guard<std::mutex> lock(stats_mutex);
                        ++st.warmCacheMisses;
                        st.warmupInstsSimulated += warmed;
                    }
                    drainMetrics().warmupInsts.inc(warmed);
                    progressLine(
                        format("[served] warm     {:<28} {:.2f}s  "
                               "shared by {} job(s)",
                               job.label, secondsSince(wt0),
                               g.jobs.size()),
                        cfg_.progress);
                } catch (const std::exception &e) {
                    // Leave ckpt null: the group's jobs fall back to
                    // full warmup+measure runs.
                    {
                        std::lock_guard<std::mutex> lock(stats_mutex);
                        ++st.warmCacheMisses;
                    }
                    warn("warm run for '{}' failed ({}); its {} "
                         "job(s) run unshared",
                         job.label, e.what(), g.jobs.size());
                }
            }));
        }
        for (auto &f : pending)
            f.get();
    }
    std::vector<const ckpt::Checkpoint *> warm(toRun.size(), nullptr);
    for (const auto &g : groups) {
        for (unsigned i : g.jobs)
            warm[i] = g.ckpt.get();
    }

    // Phase 3: measurement leg per job, retry/timeout contract
    // identical to SweepRunner. Fresh results always go to the result
    // cache (disabling the cache only disables replay, not capture).
    if (!toRun.empty()) {
        runner::ThreadPool pool(workerCount(cfg_.jobs, toRun.size()));
        std::vector<std::future<void>> pending;
        pending.reserve(toRun.size());
        for (unsigned i = 0;
             i < static_cast<unsigned>(toRun.size()); ++i) {
            pending.push_back(pool.submit([&, i] {
                const QueueJob &job = toRun[i];
                std::uint64_t warm_insts = 0, meas_insts = 0;
                runner::JobResult r =
                    runServed(job.spec, job.timeoutSeconds, warm[i],
                              warm_insts, meas_insts);
                {
                    std::lock_guard<std::mutex> lock(stats_mutex);
                    st.warmupInstsSimulated += warm_insts;
                    st.measureInstsSimulated += meas_insts;
                    if (r.ok())
                        ++st.ok;
                    else if (r.status
                             == runner::JobResult::Status::TimedOut)
                        ++st.timedOut;
                    else
                        ++st.failed;
                }
                DrainMetrics &dm = drainMetrics();
                dm.warmupInsts.inc(warm_insts);
                dm.measureInsts.inc(meas_insts);
                if (r.attempts > 1)
                    dm.retries.inc(r.attempts - 1);
                dm.jobWall.observe(r.wallSeconds);
                if (r.ok()) {
                    dm.jobsOk.inc();
                    dm.jobKips.observe(r.kips);
                } else if (r.status
                           == runner::JobResult::Status::TimedOut) {
                    dm.jobsTimeout.inc();
                } else {
                    dm.jobsFailed.inc();
                }
                {
                    auto fields = json::Value::object();
                    fields.set("id", job.id);
                    fields.set("label", r.label);
                    fields.set("status",
                               std::string(statusName(r.status)));
                    fields.set("attempts",
                               std::uint64_t{r.attempts});
                    fields.set("wall_seconds", r.wallSeconds);
                    if (r.ok())
                        fields.set("kips", r.kips);
                    else
                        fields.set("error", r.error);
                    logEvent(r.ok() ? LogLevel::Info : LogLevel::Warn,
                             "job_done", std::move(fields));
                }
                auto outcome = json::Value::object();
                outcome.set("status",
                            std::string(statusName(r.status)));
                outcome.set("attempts", std::uint64_t{r.attempts});
                if (r.ok()) {
                    CachedResult entry;
                    entry.label = r.label;
                    entry.attempts = r.attempts;
                    entry.report = r.report;
                    results_.store(job.configHash, entry);
                    outcome.set("cached", false);
                    queue_.complete(job, outcome);
                } else {
                    outcome.set("error", r.error);
                    queue_.fail(job, outcome);
                }
                std::string line =
                    format("[served] {:<7} {:<28} {:.2f}s",
                           statusName(r.status), r.label,
                           r.wallSeconds);
                if (!r.ok())
                    line += format("  {}", r.error);
                progressLine(line, cfg_.progress);
            }));
        }
        // get() rethrows service bugs; job failures live in outcomes.
        for (auto &f : pending)
            f.get();
    }

    st.wallSeconds = secondsSince(t0);
    json::writeFile(st.toJson(),
                    (fs::path(cfg_.root) / "last-drain.json")
                        .string());
    publishMetrics();
    {
        auto fields = json::Value::object();
        fields.set("jobs", st.jobs);
        fields.set("ok", st.ok);
        fields.set("failed", st.failed);
        fields.set("timed_out", st.timedOut);
        fields.set("result_cache_hits", st.resultCacheHits);
        fields.set("warm_cache_hits", st.warmCacheHits);
        fields.set("warm_cache_misses", st.warmCacheMisses);
        fields.set("wall_seconds", st.wallSeconds);
        logEvent(LogLevel::Info, "drain_end", std::move(fields));
    }
    {
        std::lock_guard<std::mutex> lock(progressMutex());
        std::cout << st.summaryLine() << "\n";
    }
    return st;
}

void
SweepService::watch(unsigned max_passes)
{
    const fs::path stop = fs::path(cfg_.root) / "stop";
    unsigned passes = 0;
    for (;;) {
        std::error_code ec;
        if (fs::exists(stop, ec)) {
            fs::remove(stop, ec);
            inform("stop requested; leaving watch mode");
            return;
        }
        if (queue_.pendingCount() > 0 || queue_.claimedCount() > 0) {
            drainOnce();
            if (max_passes != 0 && ++passes >= max_passes)
                return;
            continue;
        }
        publishMetrics();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(cfg_.pollMs));
    }
}

json::Value
SweepService::reportFor(const runner::SweepManifest &m)
{
    m.validate();
    std::vector<runner::JobResult> results;
    results.reserve(m.jobs.size());
    for (const auto &spec : m.jobs) {
        runner::JobResult r;
        r.label = spec.label;
        // peek(): report assembly must not move the replay counters
        // the drain split is measured by.
        if (auto hit = results_.peek(jobConfigHash(spec))) {
            r.status = runner::JobResult::Status::Ok;
            r.attempts = hit->attempts;
            r.report = std::move(hit->report);
            results.push_back(std::move(r));
            continue;
        }
        r.status = runner::JobResult::Status::Failed;
        r.attempts = 0;
        r.error = "no stored result for this job";
        if (auto outcome = queue_.outcomeOf(JobQueue::jobId(spec));
            outcome && outcome->isObject()) {
            if (const json::Value *a = outcome->find("attempts");
                a != nullptr && a->isNumber())
                r.attempts = static_cast<unsigned>(a->asDouble());
            if (const json::Value *e = outcome->find("error");
                e != nullptr && e->isString())
                r.error = e->asString();
            if (const json::Value *s = outcome->find("status");
                s != nullptr && s->isString()
                && s->asString() == "timeout")
                r.status = runner::JobResult::Status::TimedOut;
        }
        results.push_back(std::move(r));
    }
    return runner::SweepRunner::aggregateReport(m, results);
}

void
SweepService::publishMetrics() const
{
    queue_.updateGauges();
    warm_.updateGauges();
    results_.updateGauges();

    const std::uint64_t unix_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    const auto doc = metrics::registry().toJson(unix_ms);

    // Write-to-temp + rename: a scraper polling metrics.json never
    // reads a torn snapshot.
    const fs::path path = fs::path(cfg_.root) / "metrics.json";
    const fs::path tmp = fs::path(cfg_.root) / "metrics.json.tmp";
    json::writeFile(doc, tmp.string());
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("cannot publish '{}': {}", path.string(), ec.message());
        fs::remove(tmp, ec);
    }

    if (cfg_.metricsOut.empty())
        return;
    const std::string ptmp = cfg_.metricsOut + ".tmp";
    {
        std::ofstream out(ptmp, std::ios::trunc);
        out << metrics::registry().prometheusText();
        out.flush();
        if (!out) {
            warn("cannot write metrics text to '{}'", ptmp);
            return;
        }
    }
    fs::rename(ptmp, cfg_.metricsOut, ec);
    if (ec) {
        warn("cannot publish '{}': {}", cfg_.metricsOut, ec.message());
        fs::remove(ptmp, ec);
    }
}

json::Value
SweepService::statusJson() const
{
    auto v = json::Value::object();
    v.set("schema", "tdc-serve-status-v1");
    v.set("root", cfg_.root);
    v.set("queue", queue_.statusJson());
    v.set("warm_cache", warm_.statusJson());
    v.set("result_cache", results_.statusJson());
    return v;
}

json::Value
mergeShardReports(const runner::SweepManifest &m,
                  const std::vector<json::Value> &shardReports)
{
    m.validate();
    // Index every shard entry by label; a design point must come from
    // exactly one shard.
    std::map<std::string, const json::Value *> byLabel;
    for (const auto &shard : shardReports) {
        const json::Value *schema = shard.find("schema");
        if (schema == nullptr || !schema->isString()
            || schema->asString() != runner::sweepReportSchema)
            fatal("shard report is not a {} document",
                  runner::sweepReportSchema);
        const json::Value *jobs = shard.find("jobs");
        if (jobs == nullptr || !jobs->isArray())
            fatal("shard report has no 'jobs' array");
        for (const json::Value &entry : jobs->items()) {
            const json::Value *label = entry.find("label");
            if (label == nullptr || !label->isString())
                fatal("shard report entry has no label");
            if (!byLabel.emplace(label->asString(), &entry).second)
                fatal("job '{}' appears in more than one shard "
                      "report",
                      label->asString());
        }
    }

    auto doc = json::Value::object();
    doc.set("schema", runner::sweepReportSchema);
    doc.set("name", m.name);
    auto jobs = json::Value::array();
    for (const auto &spec : m.jobs) {
        auto it = byLabel.find(spec.label);
        if (it == byLabel.end())
            fatal("job '{}' is missing from every shard report",
                  spec.label);
        jobs.push(*it->second);
    }
    doc.set("jobs", std::move(jobs));
    return doc;
}

} // namespace serve
} // namespace tdc
