/**
 * @file
 * Cross-invocation warm-checkpoint cache.
 *
 * PR 4's --warm-once shares warm state *within* one invocation; this
 * cache makes it persistent. Entries are whole checkpoint container
 * files (src/ckpt format, unchanged) named by content address:
 *
 *     <root>/warm/wc-<warm-fingerprint>-<binary-hash>.ckpt
 *
 * A lookup hit fully decodes the file -- magic, format version and
 * every per-section checksum, the same validation `tdc_ckpt --verify`
 * performs -- and additionally requires the embedded fingerprint to
 * match the key; any defect deletes the file and reports a miss, so a
 * corrupt cache entry can never poison a run. Stores publish via
 * write-to-temp + atomic rename.
 *
 * Capacity is a byte budget over the directory; after every store the
 * least-recently-used entries (filesystem mtime, refreshed on every
 * hit) are evicted until the total fits. Eviction is safe by
 * construction: a checkpoint is a cache of re-derivable warm state,
 * so the worst case is a re-run warmup.
 */

#ifndef TDC_SERVE_WARM_CACHE_HH
#define TDC_SERVE_WARM_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "ckpt/checkpoint.hh"
#include "common/json.hh"

namespace tdc {
namespace serve {

class WarmCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t corruptDropped = 0;
        std::uint64_t evicted = 0;
    };

    /** Opens (creating if needed) <root>/warm with a byte budget. */
    WarmCache(const std::string &root, std::uint64_t capacityBytes);

    /**
     * Integrity-checked lookup by warm fingerprint (the binary hash
     * is implicit -- this process's). Returns the decoded checkpoint
     * and refreshes the entry's LRU clock on a hit; nullptr on miss
     * or on any integrity defect (the defective file is deleted).
     */
    std::shared_ptr<const ckpt::Checkpoint>
    lookup(std::uint64_t warm_fp);

    /** Publishes a checkpoint under its fingerprint, then enforces
     *  the byte budget by LRU eviction. */
    void store(const ckpt::Checkpoint &ck, std::uint64_t warm_fp);

    /** Snapshot of the hit/miss/eviction counters (thread-safe). */
    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }
    std::uint64_t capacityBytes() const { return capacityBytes_; }

    /** Entry table (file, bytes) plus totals, for --status. */
    json::Value statusJson() const;

    /** Refreshes the tdc_warm_cache_* residency gauges. */
    void updateGauges() const;

    const std::string &dir() const { return dir_; }

  private:
    std::string entryPath(std::uint64_t warm_fp) const;
    void evictOverCapacity();

    std::string dir_;
    std::uint64_t capacityBytes_;

    /** Guards stats_ and eviction scans; the warm phase calls
     *  lookup()/store() from multiple pool workers. */
    mutable std::mutex mutex_;
    Stats stats_;
};

} // namespace serve
} // namespace tdc

#endif // TDC_SERVE_WARM_CACHE_HH
