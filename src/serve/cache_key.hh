/**
 * @file
 * Cache keys for the resident sweep service.
 *
 * The service's two persistent caches are content-addressed:
 *
 *  - the warm-checkpoint cache is keyed by warmFingerprint(config) --
 *    every field that shapes the state at the warmup/measure boundary;
 *  - the result cache is keyed by jobConfigHash(spec) -- every field
 *    of the design point, including measure-only budgets and the
 *    label (a label can appear in per-job observability paths, and a
 *    stored report embeds the full config, so two jobs differing only
 *    in label must not share a report).
 *
 * Both keys are paired with binaryHash(), a digest of the running
 * executable: a rebuilt simulator may produce different (better!)
 * numbers, so cached artifacts from an older binary must never
 * satisfy a lookup from a newer one. Stale entries age out of the
 * size-capped caches via LRU eviction.
 */

#ifndef TDC_SERVE_CACHE_KEY_HH
#define TDC_SERVE_CACHE_KEY_HH

#include <cstdint>

#include "runner/sweep.hh"

namespace tdc {
namespace serve {

/**
 * FNV-1a digest of the canonical JSON serialization of a design
 * point. Any change to org, workloads, sizes, budgets, raw overrides
 * or the label changes the hash, so the result cache re-simulates
 * exactly the cells that changed. For `trace:` workloads the trace
 * file's content hash is folded in too: the spec only names a path,
 * but the report depends on the bytes behind it.
 */
std::uint64_t jobConfigHash(const runner::JobSpec &spec);

/**
 * FNV-1a digest of this process's executable image (/proc/self/exe),
 * computed once and cached. Falls back to 0 with a warning when the
 * image cannot be read (non-Linux), which keys all artifacts into one
 * shared generation.
 */
std::uint64_t binaryHash();

} // namespace serve
} // namespace tdc

#endif // TDC_SERVE_CACHE_KEY_HH
