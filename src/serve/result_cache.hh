/**
 * @file
 * Incremental result cache (`tdc-result-cache-v1`).
 *
 * One JSON file per finished design point, content-addressed by
 *
 *     <root>/results/rc-<config-hash>-<binary-hash>.json
 *
 * where the config hash covers the job's entire canonical JSON form
 * (so any manifest edit changes the key) and the binary hash covers
 * the simulator executable (so a rebuilt binary never replays stale
 * results). Only successful runs are cached: the stored entry embeds
 * the job's tdc-run-report-v1 document verbatim, which is everything
 * aggregateReport() needs to reproduce the job's slot in a sweep
 * report byte-for-byte. Failures and timeouts are never cached --
 * they re-run on the next drain.
 *
 * Entries publish via write-to-temp + atomic rename; corrupt or
 * schema-mismatched entries are deleted on lookup and report a miss.
 */

#ifndef TDC_SERVE_RESULT_CACHE_HH
#define TDC_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/json.hh"

namespace tdc {
namespace serve {

/** Schema tag stamped into every cached result entry. */
inline constexpr const char *resultCacheSchema = "tdc-result-cache-v1";

/** A decoded cache entry: enough to replay one "ok" sweep slot. */
struct CachedResult
{
    std::string label;
    unsigned attempts = 1;
    json::Value report; //!< tdc-run-report-v1, byte-preserved
};

class ResultCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t corruptDropped = 0;
        std::uint64_t stored = 0;
    };

    /** Opens (creating if needed) <root>/results. */
    explicit ResultCache(const std::string &root);

    /**
     * Lookup by job config hash (the binary hash is implicit -- this
     * process's). A hit requires a parseable entry with the expected
     * schema and an embedded report; anything else deletes the file
     * and reports a miss.
     */
    std::optional<CachedResult> lookup(std::uint64_t config_hash);

    /**
     * Same decode and integrity discipline as lookup(), but counts
     * nothing -- neither Stats nor the tdc_result_cache_* metrics
     * move. Report assembly replays finished cells through this so
     * the drain's replay/simulate split stays the only thing the
     * counters measure.
     */
    std::optional<CachedResult> peek(std::uint64_t config_hash);

    /** Publishes one successful run's slot under its config hash. */
    void store(std::uint64_t config_hash, const CachedResult &entry);

    /** Snapshot of the hit/miss/store counters (thread-safe). */
    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_;
    }

    /** Entry table (file, bytes) plus totals, for --status. */
    json::Value statusJson() const;

    /** Refreshes the tdc_result_cache_* residency gauges. */
    void updateGauges() const;

    const std::string &dir() const { return dir_; }

  private:
    std::string entryPath(std::uint64_t config_hash) const;

    /** Shared decode behind lookup()/peek(); `corrupt` reports
     *  whether a defective entry was dropped. */
    std::optional<CachedResult> read(std::uint64_t config_hash,
                                     bool &corrupt);

    std::string dir_;

    mutable std::mutex mutex_;
    Stats stats_;
};

} // namespace serve
} // namespace tdc

#endif // TDC_SERVE_RESULT_CACHE_HH
