/**
 * @file
 * Resident sweep service: ties the persistent job queue, the
 * cross-invocation warm-checkpoint cache and the incremental result
 * cache together into a drainable daemon (DESIGN.md 10).
 *
 * A drain pass is three phases:
 *
 *  1. result-cache replay -- any claimed job whose (config hash,
 *     binary hash) already has a stored run report completes
 *     immediately, simulating nothing;
 *  2. warm phase -- the remaining jobs are grouped by
 *     warmFingerprint(); each group either restores its persisted
 *     warm checkpoint from the cache (simulating zero warmup
 *     instructions) or runs one warmup, checkpoints it, and publishes
 *     the checkpoint for every later invocation;
 *  3. measure phase -- each job restores its group's checkpoint and
 *     runs the measurement leg, with the same retry/timeout contract
 *     as SweepRunner (restored measure() is byte-identical to a
 *     straight run, so reports match tdc_sweep exactly).
 *
 * reportFor() reassembles a tdc-sweep-report-v1 document for a
 * manifest purely from stored state, and mergeShardReports()
 * recombines per-shard reports into the document a single direct run
 * would have produced, byte for byte.
 */

#ifndef TDC_SERVE_SERVICE_HH
#define TDC_SERVE_SERVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/json.hh"
#include "runner/sweep.hh"
#include "serve/job_queue.hh"
#include "serve/result_cache.hh"
#include "serve/warm_cache.hh"

namespace tdc {
namespace serve {

struct ServeConfig
{
    /** Service state root: queue/, warm/, results/ live underneath. */
    std::string root = ".tdc-serve";

    /** Worker threads; 0 means min(#jobs, hardware_concurrency). */
    unsigned jobs = 0;

    /** Per-completion progress lines on stderr. */
    bool progress = true;

    /** Restore persisted warm checkpoints instead of re-warming. */
    bool useWarmCache = true;

    /** Replay stored run reports instead of re-simulating. */
    bool useResultCache = true;

    /** Warm-cache byte budget (LRU-evicted past this). */
    std::uint64_t warmCacheBytes = 4ULL << 30;

    /** Watch-mode poll interval. */
    unsigned pollMs = 500;

    /** Optional Prometheus text exposition file; empty disables. */
    std::string metricsOut;

    /** Applies serve.* dotted overrides from a parsed Config. */
    static ServeConfig fromConfig(const Config &cfg);
};

/** What one drain pass did; embedded in <root>/last-drain.json. */
struct DrainStats
{
    std::uint64_t jobs = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;

    std::uint64_t resultCacheHits = 0;
    std::uint64_t warmCacheHits = 0;
    std::uint64_t warmCacheMisses = 0;

    /** Instructions actually simulated this pass, split by leg. A
     *  warm-cache hit contributes zero warmup instructions; a
     *  result-cache hit contributes zero of either. */
    std::uint64_t warmupInstsSimulated = 0;
    std::uint64_t measureInstsSimulated = 0;

    double wallSeconds = 0.0;

    json::Value toJson() const;

    /** The deterministic one-line drain summary tests grep for. */
    std::string summaryLine() const;
};

class SweepService
{
  public:
    explicit SweepService(const ServeConfig &cfg);

    /** Spools a manifest's jobs; returns the count newly enqueued. */
    unsigned enqueue(const runner::SweepManifest &m);

    /**
     * Recovers orphaned claims, then drains the queue to empty:
     * result-cache replay, then warm phase, then measure phase, all
     * on a worker pool. Writes <root>/last-drain.json and returns the
     * pass's statistics. Safe to call with an empty queue.
     */
    DrainStats drainOnce();

    /**
     * Long-running mode: drain whenever jobs are pending, poll
     * otherwise. Returns when <root>/stop exists (the file is
     * consumed) or, if `max_passes` is nonzero, after that many
     * drain passes (test hook).
     */
    void watch(unsigned max_passes = 0);

    /**
     * Reassembles the tdc-sweep-report-v1 document for a manifest
     * from stored state only: successful jobs come from the result
     * cache, failures from their queue outcome. Byte-identical to a
     * direct SweepRunner::aggregateReport over the same runs.
     */
    json::Value reportFor(const runner::SweepManifest &m);

    /** {queue, warm cache, result cache} state for --status. */
    json::Value statusJson() const;

    /**
     * Publishes one tdc-metrics-v1 snapshot: refreshes every gauge,
     * writes <root>/metrics.json via write-to-temp + atomic rename
     * (a concurrent reader never sees a torn file), and -- when
     * ServeConfig::metricsOut is set -- mirrors the registry as
     * Prometheus text exposition to that path. Called at drain
     * start/end, after every enqueue and on each watch poll tick.
     */
    void publishMetrics() const;

    JobQueue &queue() { return queue_; }
    WarmCache &warmCache() { return warm_; }
    ResultCache &resultCache() { return results_; }

  private:
    ServeConfig cfg_;
    JobQueue queue_;
    WarmCache warm_;
    ResultCache results_;
};

/**
 * Recombines per-shard sweep reports (produced from shardSlice()
 * partitions of `m`) into the report a direct single-machine run of
 * the whole manifest would emit. Every manifest job must appear in
 * exactly one shard report; duplicates and gaps are fatal.
 */
json::Value
mergeShardReports(const runner::SweepManifest &m,
                  const std::vector<json::Value> &shardReports);

} // namespace serve
} // namespace tdc

#endif // TDC_SERVE_SERVICE_HH
