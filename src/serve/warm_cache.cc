#include "serve/warm_cache.hh"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <vector>

#include "common/format.hh"
#include "common/logging.hh"
#include "metrics/registry.hh"
#include "serve/cache_key.hh"

namespace fs = std::filesystem;

namespace tdc {
namespace serve {

namespace {

/** Warm-checkpoint-cache metrics (DESIGN.md 11 catalog). */
struct WarmMetrics
{
    metrics::Counter &hits;
    metrics::Counter &misses;
    metrics::Counter &verifyFailures;
    metrics::Counter &stores;
    metrics::Counter &evictions;
    metrics::Counter &evictedBytes;
    metrics::Gauge &residentBytes;
    metrics::Gauge &entries;
};

WarmMetrics &
warmMetrics()
{
    auto &r = metrics::registry();
    static WarmMetrics m{
        r.counter("tdc_warm_cache_hits_total",
                  "Warm checkpoints restored from the cache"),
        r.counter("tdc_warm_cache_misses_total",
                  "Warm-cache lookups that found no usable entry"),
        r.counter("tdc_warm_cache_verify_failures_total",
                  "Entries dropped for failing integrity checks"),
        r.counter("tdc_warm_cache_stores_total",
                  "Warm checkpoints published to the cache"),
        r.counter("tdc_warm_cache_evictions_total",
                  "Entries evicted past the byte budget"),
        r.counter("tdc_warm_cache_evicted_bytes_total",
                  "Bytes reclaimed by warm-cache eviction"),
        r.gauge("tdc_warm_cache_resident_bytes",
                "Bytes currently resident in the warm cache"),
        r.gauge("tdc_warm_cache_entries",
                "Entries currently resident in the warm cache"),
    };
    return m;
}

} // namespace

WarmCache::WarmCache(const std::string &root,
                     std::uint64_t capacityBytes)
    : dir_((fs::path(root) / "warm").string()),
      capacityBytes_(capacityBytes)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("warm cache: cannot create '{}': {}", dir_,
              ec.message());
}

std::string
WarmCache::entryPath(std::uint64_t warm_fp) const
{
    return (fs::path(dir_)
            / format("wc-{}-{}.ckpt", ckpt::hex16(warm_fp),
                     ckpt::hex16(binaryHash())))
        .string();
}

std::shared_ptr<const ckpt::Checkpoint>
WarmCache::lookup(std::uint64_t warm_fp)
{
    const std::string path = entryPath(warm_fp);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.misses;
        }
        warmMetrics().misses.inc();
        return nullptr;
    }
    try {
        // Full tdc_ckpt --verify-grade decode: magic, format version
        // and every per-section checksum, plus the content address
        // itself (a renamed or stale-keyed file must not hit).
        ScopedFatalCapture capture;
        auto ck = std::make_shared<ckpt::Checkpoint>(
            ckpt::Checkpoint::loadFile(path));
        if (ck->fingerprint() != warm_fp)
            fatal("entry fingerprint {:#x} does not match its key "
                  "{:#x}",
                  ck->fingerprint(), warm_fp);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
        }
        warmMetrics().hits.inc();
        // Refresh the LRU clock so hot fingerprints survive eviction.
        fs::last_write_time(path,
                            std::filesystem::file_time_type::clock::now(),
                            ec);
        return ck;
    } catch (const std::exception &e) {
        warn("warm cache: dropping corrupt entry '{}': {}", path,
             e.what());
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.corruptDropped;
            ++stats_.misses;
        }
        warmMetrics().verifyFailures.inc();
        warmMetrics().misses.inc();
        fs::remove(path, ec);
        return nullptr;
    }
}

void
WarmCache::store(const ckpt::Checkpoint &ck, std::uint64_t warm_fp)
{
    tdc_assert(ck.fingerprint() == warm_fp,
               "warm cache store under a mismatched fingerprint");
    const std::string path = entryPath(warm_fp);
    const std::string tmp = path + ".tmp";
    ck.writeFile(tmp);
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("warm cache: cannot publish '{}': {}", path,
             ec.message());
        fs::remove(tmp, ec);
        return;
    }
    warmMetrics().stores.inc();
    evictOverCapacity();
}

void
WarmCache::evictOverCapacity()
{
    struct Entry
    {
        fs::path path;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (!e.is_regular_file())
            continue;
        Entry entry{e.path(), e.file_size(), e.last_write_time()};
        total += entry.bytes;
        entries.push_back(std::move(entry));
    }
    if (total <= capacityBytes_)
        return;
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const Entry &victim : entries) {
        if (total <= capacityBytes_)
            break;
        fs::remove(victim.path, ec);
        if (ec)
            continue;
        total -= victim.bytes;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.evicted;
        }
        warmMetrics().evictions.inc();
        warmMetrics().evictedBytes.inc(victim.bytes);
    }
}

void
WarmCache::updateGauges() const
{
    std::uint64_t total = 0, count = 0;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (!e.is_regular_file())
            continue;
        total += e.file_size();
        ++count;
    }
    warmMetrics().residentBytes.set(
        static_cast<std::int64_t>(total));
    warmMetrics().entries.set(static_cast<std::int64_t>(count));
}

json::Value
WarmCache::statusJson() const
{
    auto v = json::Value::object();
    v.set("dir", dir_);
    v.set("capacity_bytes", capacityBytes_);
    std::uint64_t total = 0;
    auto entries = json::Value::array();
    std::vector<std::pair<std::string, std::uint64_t>> files;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (e.is_regular_file())
            files.emplace_back(e.path().filename().string(),
                               e.file_size());
    }
    std::sort(files.begin(), files.end());
    for (const auto &[name, bytes] : files) {
        total += bytes;
        auto entry = json::Value::object();
        entry.set("file", name);
        entry.set("bytes", bytes);
        entries.push(std::move(entry));
    }
    v.set("bytes", total);
    v.set("entries", std::move(entries));
    return v;
}

} // namespace serve
} // namespace tdc
