#include "serve/result_cache.hh"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "serve/cache_key.hh"

namespace fs = std::filesystem;

namespace tdc {
namespace serve {

ResultCache::ResultCache(const std::string &root)
    : dir_((fs::path(root) / "results").string())
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("result cache: cannot create '{}': {}", dir_,
              ec.message());
}

std::string
ResultCache::entryPath(std::uint64_t config_hash) const
{
    return (fs::path(dir_)
            / format("rc-{}-{}.json", ckpt::hex16(config_hash),
                     ckpt::hex16(binaryHash())))
        .string();
}

std::optional<CachedResult>
ResultCache::lookup(std::uint64_t config_hash)
{
    const std::string path = entryPath(config_hash);
    std::error_code ec;
    if (!fs::exists(path, ec)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }

    std::string err;
    auto doc = json::tryReadFile(path, &err);
    if (doc && doc->isObject()) {
        const json::Value *schema = doc->find("schema");
        const json::Value *label = doc->find("label");
        const json::Value *report = doc->find("report");
        if (schema != nullptr && schema->isString()
            && schema->asString() == resultCacheSchema
            && label != nullptr && label->isString()
            && report != nullptr && report->isObject()) {
            CachedResult entry;
            entry.label = label->asString();
            if (const json::Value *a = doc->find("attempts");
                a != nullptr && a->isNumber())
                entry.attempts =
                    static_cast<unsigned>(a->asDouble());
            entry.report = *report;
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
            return entry;
        }
        err = "missing or mistyped schema/label/report";
    }
    warn("result cache: dropping corrupt entry '{}': {}", path, err);
    fs::remove(path, ec);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.corruptDropped;
    ++stats_.misses;
    return std::nullopt;
}

void
ResultCache::store(std::uint64_t config_hash, const CachedResult &entry)
{
    const std::string path = entryPath(config_hash);
    const std::string tmp = path + ".tmp";

    auto doc = json::Value::object();
    doc.set("schema", resultCacheSchema);
    doc.set("config_hash", ckpt::hex16(config_hash));
    doc.set("binary_hash", ckpt::hex16(binaryHash()));
    doc.set("label", entry.label);
    doc.set("attempts", std::uint64_t{entry.attempts});
    doc.set("report", entry.report);

    json::writeFile(doc, tmp);
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: cannot publish '{}': {}", path,
             ec.message());
        fs::remove(tmp, ec);
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.stored;
}

json::Value
ResultCache::statusJson() const
{
    auto v = json::Value::object();
    v.set("dir", dir_);
    std::uint64_t total = 0;
    std::vector<std::pair<std::string, std::uint64_t>> files;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (e.is_regular_file())
            files.emplace_back(e.path().filename().string(),
                               e.file_size());
    }
    std::sort(files.begin(), files.end());
    auto entries = json::Value::array();
    for (const auto &[name, bytes] : files) {
        total += bytes;
        auto entry = json::Value::object();
        entry.set("file", name);
        entry.set("bytes", bytes);
        entries.push(std::move(entry));
    }
    v.set("bytes", total);
    v.set("entries", std::move(entries));
    return v;
}

} // namespace serve
} // namespace tdc
