#include "serve/result_cache.hh"

#include <algorithm>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "common/format.hh"
#include "common/logging.hh"
#include "metrics/registry.hh"
#include "serve/cache_key.hh"

namespace fs = std::filesystem;

namespace tdc {
namespace serve {

namespace {

/** Result-cache metrics (DESIGN.md 11 catalog). */
struct ResultMetrics
{
    metrics::Counter &replays;
    metrics::Counter &misses;
    metrics::Counter &corrupt;
    metrics::Counter &stores;
    metrics::Gauge &residentBytes;
    metrics::Gauge &entries;
};

ResultMetrics &
resultMetrics()
{
    auto &r = metrics::registry();
    static ResultMetrics m{
        r.counter("tdc_result_cache_replays_total",
                  "Finished cells replayed from the result cache"),
        r.counter("tdc_result_cache_misses_total",
                  "Result-cache lookups that found no usable entry"),
        r.counter("tdc_result_cache_corrupt_total",
                  "Entries dropped for schema or parse defects"),
        r.counter("tdc_result_cache_stores_total",
                  "Successful runs published to the result cache"),
        r.gauge("tdc_result_cache_resident_bytes",
                "Bytes currently resident in the result cache"),
        r.gauge("tdc_result_cache_entries",
                "Entries currently resident in the result cache"),
    };
    return m;
}

} // namespace

ResultCache::ResultCache(const std::string &root)
    : dir_((fs::path(root) / "results").string())
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        fatal("result cache: cannot create '{}': {}", dir_,
              ec.message());
}

std::string
ResultCache::entryPath(std::uint64_t config_hash) const
{
    return (fs::path(dir_)
            / format("rc-{}-{}.json", ckpt::hex16(config_hash),
                     ckpt::hex16(binaryHash())))
        .string();
}

std::optional<CachedResult>
ResultCache::read(std::uint64_t config_hash, bool &corrupt)
{
    corrupt = false;
    const std::string path = entryPath(config_hash);
    std::error_code ec;
    if (!fs::exists(path, ec))
        return std::nullopt;

    std::string err;
    auto doc = json::tryReadFile(path, &err);
    if (doc && doc->isObject()) {
        const json::Value *schema = doc->find("schema");
        const json::Value *label = doc->find("label");
        const json::Value *report = doc->find("report");
        if (schema != nullptr && schema->isString()
            && schema->asString() == resultCacheSchema
            && label != nullptr && label->isString()
            && report != nullptr && report->isObject()) {
            CachedResult entry;
            entry.label = label->asString();
            if (const json::Value *a = doc->find("attempts");
                a != nullptr && a->isNumber())
                entry.attempts =
                    static_cast<unsigned>(a->asDouble());
            entry.report = *report;
            return entry;
        }
        err = "missing or mistyped schema/label/report";
    }
    warn("result cache: dropping corrupt entry '{}': {}", path, err);
    fs::remove(path, ec);
    corrupt = true;
    return std::nullopt;
}

std::optional<CachedResult>
ResultCache::lookup(std::uint64_t config_hash)
{
    bool corrupt = false;
    auto entry = read(config_hash, corrupt);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (entry) {
            ++stats_.hits;
        } else {
            ++stats_.misses;
            if (corrupt)
                ++stats_.corruptDropped;
        }
    }
    if (entry) {
        resultMetrics().replays.inc();
    } else {
        resultMetrics().misses.inc();
        if (corrupt)
            resultMetrics().corrupt.inc();
    }
    return entry;
}

std::optional<CachedResult>
ResultCache::peek(std::uint64_t config_hash)
{
    bool corrupt = false;
    return read(config_hash, corrupt);
}

void
ResultCache::store(std::uint64_t config_hash, const CachedResult &entry)
{
    const std::string path = entryPath(config_hash);
    const std::string tmp = path + ".tmp";

    auto doc = json::Value::object();
    doc.set("schema", resultCacheSchema);
    doc.set("config_hash", ckpt::hex16(config_hash));
    doc.set("binary_hash", ckpt::hex16(binaryHash()));
    doc.set("label", entry.label);
    doc.set("attempts", std::uint64_t{entry.attempts});
    doc.set("report", entry.report);

    json::writeFile(doc, tmp);
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("result cache: cannot publish '{}': {}", path,
             ec.message());
        fs::remove(tmp, ec);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.stored;
    }
    resultMetrics().stores.inc();
}

void
ResultCache::updateGauges() const
{
    std::uint64_t total = 0, count = 0;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (!e.is_regular_file())
            continue;
        total += e.file_size();
        ++count;
    }
    resultMetrics().residentBytes.set(
        static_cast<std::int64_t>(total));
    resultMetrics().entries.set(static_cast<std::int64_t>(count));
}

json::Value
ResultCache::statusJson() const
{
    auto v = json::Value::object();
    v.set("dir", dir_);
    std::uint64_t total = 0;
    std::vector<std::pair<std::string, std::uint64_t>> files;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec)) {
        if (e.is_regular_file())
            files.emplace_back(e.path().filename().string(),
                               e.file_size());
    }
    std::sort(files.begin(), files.end());
    auto entries = json::Value::array();
    for (const auto &[name, bytes] : files) {
        total += bytes;
        auto entry = json::Value::object();
        entry.set("file", name);
        entry.set("bytes", bytes);
        entries.push(std::move(entry));
    }
    v.set("bytes", total);
    v.set("entries", std::move(entries));
    return v;
}

} // namespace serve
} // namespace tdc
